"""Unit tests for the BipartiteDataset substrate."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets.bipartite import BipartiteDataset, DatasetError


class TestConstruction:
    def test_from_edges_basic(self):
        ds = BipartiteDataset.from_edges([0, 1, 2], [1, 0, 2])
        assert ds.n_users == 3
        assert ds.n_items == 3
        assert ds.n_ratings == 3

    def test_from_edges_default_ratings_are_ones(self):
        ds = BipartiteDataset.from_edges([0, 1], [0, 1])
        assert np.all(ds.matrix.data == 1.0)

    def test_from_edges_explicit_shape_keeps_empty_rows(self):
        ds = BipartiteDataset.from_edges([0], [0], n_users=5, n_items=7)
        assert ds.n_users == 5
        assert ds.n_items == 7
        assert ds.user_items(4).size == 0

    def test_from_edges_duplicate_entries_are_summed(self):
        ds = BipartiteDataset.from_edges([0, 0], [1, 1], [2.0, 3.0])
        assert ds.n_ratings == 1
        assert ds.user_profile(0) == {1: 5.0}

    def test_from_edges_length_mismatch_raises(self):
        with pytest.raises(DatasetError, match="equal length"):
            BipartiteDataset.from_edges([0, 1], [0])

    def test_from_edges_ratings_length_mismatch_raises(self):
        with pytest.raises(DatasetError, match="ratings length"):
            BipartiteDataset.from_edges([0, 1], [0, 1], [1.0])

    def test_from_edges_negative_ids_raise(self):
        with pytest.raises(DatasetError, match="non-negative"):
            BipartiteDataset.from_edges([-1], [0])

    def test_from_edges_out_of_range_user_raises(self):
        with pytest.raises(DatasetError, match="out of range"):
            BipartiteDataset.from_edges([5], [0], n_users=3)

    def test_from_edges_out_of_range_item_raises(self):
        with pytest.raises(DatasetError, match="out of range"):
            BipartiteDataset.from_edges([0], [9], n_items=3)

    def test_from_profiles_dict_and_list_agree(self):
        as_list = BipartiteDataset.from_profiles([{0: 1.0}, {1: 2.0}])
        as_dict = BipartiteDataset.from_profiles({0: {0: 1.0}, 1: {1: 2.0}})
        assert as_list == as_dict

    def test_explicit_zeros_are_dropped(self):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))
        matrix[0, 0] = 0.0  # store an explicit zero
        ds = BipartiteDataset(matrix=matrix)
        assert ds.n_ratings == 1

    def test_non_finite_ratings_raise(self):
        with pytest.raises(DatasetError, match="non-finite"):
            BipartiteDataset.from_edges([0], [0], [np.nan])

    def test_empty_shape_raises(self):
        with pytest.raises(DatasetError, match="at least one"):
            BipartiteDataset(matrix=sp.csr_matrix((0, 4)))

    def test_symmetric_requires_square(self):
        with pytest.raises(DatasetError, match="square"):
            BipartiteDataset.from_edges([0], [1], n_users=2, n_items=3, symmetric=True)


class TestStatistics:
    def test_density(self, toy_dataset):
        assert toy_dataset.density == pytest.approx(6 / (4 * 4))
        assert toy_dataset.density_percent == pytest.approx(37.5)

    def test_profile_sizes(self, toy_dataset):
        assert toy_dataset.user_profile_sizes().tolist() == [2, 2, 1, 1]
        assert toy_dataset.item_profile_sizes().tolist() == [1, 2, 1, 2]

    def test_average_profile_sizes(self, toy_dataset):
        assert toy_dataset.avg_user_profile_size == pytest.approx(1.5)
        assert toy_dataset.avg_item_profile_size == pytest.approx(1.5)


class TestProfileAccess:
    def test_user_items_sorted(self, rated_dataset):
        items = rated_dataset.user_items(3)
        assert items.tolist() == [0, 1, 2, 3]

    def test_user_ratings_aligned(self, rated_dataset):
        assert rated_dataset.user_profile(0) == {0: 5.0, 1: 3.0, 2: 1.0}

    def test_item_users_is_item_profile(self, toy_dataset):
        # coffee (item 1) was liked by Alice (0) and Bob (1).
        assert toy_dataset.item_users(1).tolist() == [0, 1]

    def test_iter_user_profiles_covers_all_users(self, toy_dataset):
        seen = {user for user, _, _ in toy_dataset.iter_user_profiles()}
        assert seen == set(range(toy_dataset.n_users))

    def test_out_of_range_user_raises(self, toy_dataset):
        with pytest.raises(DatasetError):
            toy_dataset.user_items(99)

    def test_out_of_range_item_raises(self, toy_dataset):
        with pytest.raises(DatasetError):
            toy_dataset.item_users(99)

    def test_csc_matches_csr(self, rated_dataset):
        assert (rated_dataset.csc != rated_dataset.matrix.tocsc()).nnz == 0


class TestDerivations:
    def test_binarized_sets_all_ratings_to_one(self, rated_dataset):
        binary = rated_dataset.binarized()
        assert np.all(binary.matrix.data == 1.0)
        assert binary.n_ratings == rated_dataset.n_ratings

    def test_sparsify_keeps_requested_fraction(self):
        from tests.conftest import random_dataset

        ds = random_dataset(n_users=50, n_items=50, density=0.3, seed=3)
        thinned = ds.sparsify(0.5, seed=1)
        assert thinned.n_ratings == round(0.5 * ds.n_ratings)

    def test_sparsify_is_a_subset(self):
        from tests.conftest import random_dataset

        ds = random_dataset(seed=4)
        thinned = ds.sparsify(0.4, seed=2)
        # Every kept edge must exist in the parent with the same value.
        diff = thinned.matrix - ds.matrix.multiply(thinned.matrix.astype(bool))
        assert diff.nnz == 0

    def test_sparsify_min_profile_protects_users(self):
        from tests.conftest import random_dataset

        ds = random_dataset(n_users=40, n_items=60, density=0.25, seed=5)
        thinned = ds.sparsify(0.2, seed=3, min_profile_size=2)
        assert thinned.user_profile_sizes().min() >= min(
            2, int(ds.user_profile_sizes().min())
        )

    def test_sparsify_full_fraction_is_identity(self, rated_dataset):
        assert rated_dataset.sparsify(1.0) == rated_dataset

    def test_sparsify_invalid_fraction_raises(self, rated_dataset):
        with pytest.raises(DatasetError):
            rated_dataset.sparsify(0.0)
        with pytest.raises(DatasetError):
            rated_dataset.sparsify(1.5)

    def test_sparsify_deterministic_under_seed(self, rated_dataset):
        a = rated_dataset.sparsify(0.5, seed=7)
        b = rated_dataset.sparsify(0.5, seed=7)
        assert a == b

    def test_subset_users(self, rated_dataset):
        subset = rated_dataset.subset_users([0, 2])
        assert subset.n_users == 2
        assert subset.user_profile(1) == rated_dataset.user_profile(2)

    def test_subset_users_empty_raises(self, rated_dataset):
        with pytest.raises(DatasetError):
            rated_dataset.subset_users([])

    def test_subset_users_out_of_range_raises(self, rated_dataset):
        with pytest.raises(DatasetError):
            rated_dataset.subset_users([99])


class TestEquality:
    def test_equal_datasets(self, toy_dataset):
        clone = BipartiteDataset(matrix=toy_dataset.matrix.copy(), name="other")
        assert toy_dataset == clone

    def test_different_shapes_unequal(self, toy_dataset, rated_dataset):
        assert toy_dataset != rated_dataset

    def test_different_values_unequal(self, rated_dataset):
        other = rated_dataset.binarized()
        assert rated_dataset != other
