"""Unit tests for dataset transforms."""

import numpy as np
import pytest

from repro.datasets import (
    BipartiteDataset,
    DatasetError,
    filter_items,
    filter_users,
    iterative_core,
    train_test_split,
)
from tests.conftest import random_dataset


class TestFilterItems:
    def test_removes_cold_items(self, toy_dataset):
        # book (item 0) and cheese (item 2) have degree 1.
        filtered = filter_items(toy_dataset, min_degree=2)
        assert filtered.item_profile_sizes()[0] == 0
        assert filtered.item_profile_sizes()[1] == 2  # coffee survives

    def test_item_universe_size_preserved(self, toy_dataset):
        filtered = filter_items(toy_dataset, min_degree=2)
        assert filtered.n_items == toy_dataset.n_items

    def test_max_degree_cap(self, toy_dataset):
        filtered = filter_items(toy_dataset, min_degree=1, max_degree=1)
        # Only degree-1 items survive: book and cheese.
        assert filtered.n_ratings == 2

    def test_all_removed_raises(self, toy_dataset):
        with pytest.raises(DatasetError, match="every rating"):
            filter_items(toy_dataset, min_degree=100)

    def test_surviving_ratings_unchanged(self):
        ds = random_dataset(n_users=30, n_items=20, density=0.3, seed=1, ratings=True)
        filtered = filter_items(ds, min_degree=3)
        for user in range(ds.n_users):
            original = ds.user_profile(user)
            for item, value in filtered.user_profile(user).items():
                assert original[item] == value


class TestFilterUsers:
    def test_drops_small_profiles(self, rated_dataset):
        filtered = filter_users(rated_dataset, min_profile=2)
        assert filtered.n_users == 4  # user 4 has a single rating
        assert filtered.user_profile_sizes().min() >= 2

    def test_all_removed_raises(self, rated_dataset):
        with pytest.raises(DatasetError, match="every user"):
            filter_users(rated_dataset, min_profile=100)


class TestIterativeCore:
    def test_fixed_point_reached(self):
        ds = random_dataset(n_users=60, n_items=40, density=0.08, seed=2)
        core = iterative_core(ds, min_user_profile=2, min_item_profile=2)
        item_degrees = core.item_profile_sizes()
        assert np.all((item_degrees == 0) | (item_degrees >= 2))
        assert core.user_profile_sizes().min() >= 2

    def test_already_core_is_unchanged(self):
        ds = BipartiteDataset.from_profiles(
            [{0: 1.0, 1: 1.0}, {0: 1.0, 1: 1.0}], n_items=2
        )
        core = iterative_core(ds, min_user_profile=2, min_item_profile=2)
        assert core.n_ratings == ds.n_ratings


class TestTrainTestSplit:
    def test_partition(self, tiny_wikipedia):
        train, held_out = train_test_split(tiny_wikipedia, 0.25, seed=3)
        hidden_count = sum(len(items) for items in held_out.values())
        assert train.n_ratings + hidden_count == tiny_wikipedia.n_ratings

    def test_hidden_items_absent_from_train(self, tiny_wikipedia):
        train, held_out = train_test_split(tiny_wikipedia, 0.25, seed=3)
        for user, hidden in held_out.items():
            kept = set(train.user_items(user).tolist())
            assert not (hidden & kept)

    def test_min_train_profile_respected(self, tiny_wikipedia):
        train, _ = train_test_split(
            tiny_wikipedia, 0.5, min_train_profile=2, seed=4
        )
        original = tiny_wikipedia.user_profile_sizes()
        floor = np.minimum(original, 2)
        assert np.all(train.user_profile_sizes() >= floor)

    def test_invalid_fraction_raises(self, tiny_wikipedia):
        with pytest.raises(DatasetError):
            train_test_split(tiny_wikipedia, 0.0)
        with pytest.raises(DatasetError):
            train_test_split(tiny_wikipedia, 1.0)

    def test_deterministic(self, tiny_wikipedia):
        a_train, a_held = train_test_split(tiny_wikipedia, 0.2, seed=5)
        b_train, b_held = train_test_split(tiny_wikipedia, 0.2, seed=5)
        assert a_train == b_train
        assert a_held == b_held
