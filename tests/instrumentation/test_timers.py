"""Unit tests for the phase timer."""

import time

import pytest

from repro.instrumentation.timers import PHASES, PhaseTimer


class TestPhaseTimer:
    def test_single_phase(self):
        timer = PhaseTimer()
        with timer.phase("similarity"):
            time.sleep(0.01)
        assert timer.get("similarity") >= 0.01

    def test_phases_accumulate(self):
        timer = PhaseTimer()
        for _ in range(3):
            with timer.phase("work"):
                time.sleep(0.002)
        assert timer.get("work") >= 0.006

    def test_unknown_phase_is_zero(self):
        assert PhaseTimer().get("nothing") == 0.0

    def test_total_sums_phases(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            time.sleep(0.002)
        with timer.phase("b"):
            time.sleep(0.002)
        assert timer.total == pytest.approx(
            timer.get("a") + timer.get("b")
        )

    def test_reentrant_same_phase_raises(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError, match="already active"):
            with timer.phase("x"):
                with timer.phase("x"):
                    pass

    def test_nested_phases_are_exclusive(self):
        """Inner phase time is not double-counted into the outer phase."""
        timer = PhaseTimer()
        with timer.phase("outer"):
            time.sleep(0.005)
            with timer.phase("inner"):
                time.sleep(0.02)
        assert timer.get("inner") >= 0.02
        assert timer.get("outer") < 0.02
        assert timer.total == pytest.approx(
            timer.get("inner") + timer.get("outer")
        )

    def test_exception_still_records_time(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("x"):
                time.sleep(0.002)
                raise RuntimeError("boom")
        assert timer.get("x") >= 0.002
        # Phase stack is clean: the phase can be entered again.
        with timer.phase("x"):
            pass

    def test_fractions_sum_to_one(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            time.sleep(0.002)
        with timer.phase("b"):
            time.sleep(0.004)
        fractions = timer.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["b"] > fractions["a"]

    def test_fractions_empty_when_untimed(self):
        assert PhaseTimer().fractions() == {}

    def test_merge(self):
        a, b = PhaseTimer(), PhaseTimer()
        with a.phase("x"):
            time.sleep(0.002)
        with b.phase("x"):
            time.sleep(0.002)
        with b.phase("y"):
            pass
        merged = a.merge(b)
        assert merged.get("x") == pytest.approx(a.get("x") + b.get("x"))
        assert "y" in merged.seconds

    def test_as_breakdown_has_canonical_phases(self):
        breakdown = PhaseTimer().as_breakdown()
        assert tuple(breakdown) == PHASES
        assert all(value == 0.0 for value in breakdown.values())
