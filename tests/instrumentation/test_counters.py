"""Unit tests for similarity counters and scan-rate normalisation."""

import pytest

from repro.instrumentation.counters import SimilarityCounter, scan_rate


class TestSimilarityCounter:
    def test_starts_at_zero(self):
        assert SimilarityCounter().evaluations == 0

    def test_add_accumulates(self):
        counter = SimilarityCounter()
        counter.add(3)
        counter.add()
        assert counter.evaluations == 4

    def test_negative_add_raises(self):
        with pytest.raises(ValueError):
            SimilarityCounter().add(-1)

    def test_checkpoints(self):
        counter = SimilarityCounter()
        counter.add(5)
        counter.checkpoint()
        counter.add(2)
        counter.checkpoint()
        assert counter.checkpoints == [5, 7]

    def test_reset(self):
        counter = SimilarityCounter()
        counter.add(5)
        counter.checkpoint()
        counter.reset()
        assert counter.evaluations == 0
        assert counter.checkpoints == []

    def test_scan_rate_method(self):
        counter = SimilarityCounter()
        counter.add(10)
        assert counter.scan_rate(5) == pytest.approx(1.0)


class TestScanRate:
    def test_paper_normalisation(self):
        # 6 evaluations over 4 users: 4*3/2 = 6 pairs -> 100%.
        assert scan_rate(6, 4) == pytest.approx(1.0)

    def test_zero_users(self):
        assert scan_rate(10, 0) == 0.0
        assert scan_rate(10, 1) == 0.0

    def test_fraction(self):
        assert scan_rate(3, 4) == pytest.approx(0.5)
