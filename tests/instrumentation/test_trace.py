"""Unit tests for convergence traces."""

import numpy as np
import pytest

from repro.instrumentation.trace import ConvergenceTrace


class TestRecording:
    def test_record_and_len(self):
        trace = ConvergenceTrace()
        trace.record(1, 100, 40)
        trace.record(2, 180, 10)
        assert len(trace) == 2
        assert trace.iterations == 2

    def test_snapshots_dropped_unless_enabled(self):
        trace = ConvergenceTrace()
        trace.record(1, 10, 5, snapshot="snap")
        assert trace.records[0].snapshot is None

    def test_snapshots_kept_when_enabled(self):
        trace = ConvergenceTrace(keep_snapshots=True)
        trace.record(1, 10, 5, snapshot="snap")
        assert trace.snapshots() == ["snap"]


class TestSeries:
    def test_scan_rates(self):
        trace = ConvergenceTrace()
        trace.record(1, 6, 3)
        trace.record(2, 12, 1)
        # 4 users -> 6 possible pairs.
        np.testing.assert_allclose(trace.scan_rates(4), [1.0, 2.0])

    def test_updates_per_user(self):
        trace = ConvergenceTrace()
        trace.record(1, 5, 30)
        np.testing.assert_allclose(trace.updates_per_user(10), [3.0])

    def test_updates_per_user_invalid_n(self):
        trace = ConvergenceTrace()
        with pytest.raises(ValueError):
            trace.updates_per_user(0)

    def test_recalls_nan_before_attach(self):
        trace = ConvergenceTrace()
        trace.record(1, 5, 3)
        assert np.isnan(trace.recalls()).all()


class TestAttachRecalls:
    def test_attach(self):
        trace = ConvergenceTrace()
        trace.record(1, 5, 3)
        trace.record(2, 9, 1)
        trace.attach_recalls([0.4, 0.8])
        np.testing.assert_allclose(trace.recalls(), [0.4, 0.8])

    def test_attach_preserves_other_fields(self):
        trace = ConvergenceTrace(keep_snapshots=True)
        trace.record(1, 5, 3, snapshot="s")
        trace.attach_recalls([0.5])
        record = trace.records[0]
        assert record.evaluations == 5
        assert record.updates == 3
        assert record.snapshot == "s"

    def test_attach_length_mismatch_raises(self):
        trace = ConvergenceTrace()
        trace.record(1, 5, 3)
        with pytest.raises(ValueError, match="expected 1"):
            trace.attach_recalls([0.1, 0.2])
