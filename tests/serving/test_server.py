"""KnnServer: NDJSON protocol, batching, and error envelopes."""

import asyncio
import json

import pytest

from repro import AddRating, DynamicKnnIndex, KiffConfig, KnnServer
from tests.conftest import random_dataset


@pytest.fixture
def index():
    dataset = random_dataset(
        n_users=20, n_items=15, density=0.2, seed=12, ratings=True
    )
    ix = DynamicKnnIndex(dataset, KiffConfig(k=4), auto_refresh=False)
    yield ix
    ix.close()


async def _ask(reader, writer, *requests):
    """Send *requests* as one pipelined write; return decoded replies."""
    lines = b"".join(
        json.dumps(request).encode() + b"\n" for request in requests
    )
    writer.write(lines)
    await writer.drain()
    replies = []
    for _ in requests:
        line = await asyncio.wait_for(reader.readline(), timeout=10)
        replies.append(json.loads(line))
    return replies


async def _with_server(index, scenario, **kwargs):
    server = KnnServer(index, port=0, **kwargs)
    await server.start()
    try:
        host, port = server.address
        reader, writer = await asyncio.open_connection(host, port)
        try:
            return await scenario(server, reader, writer)
        finally:
            writer.close()
    finally:
        await server.stop()


class TestProtocol:
    def test_neighbors_reply_matches_snapshot(self, index):
        async def scenario(server, reader, writer):
            (reply,) = await _ask(
                reader, writer, {"op": "neighbors", "user": 3}
            )
            snapshot = index.pin()
            assert reply["ok"] is True
            assert reply["user"] == 3
            assert reply["version"] == snapshot.version
            assert reply["neighbors"] == snapshot.neighbors_of(3).tolist()
            assert reply["sims"] == pytest.approx(
                snapshot.sims_of(3).tolist()
            )

        asyncio.run(_with_server(index, scenario))

    def test_recommend_honors_top_n(self, index):
        async def scenario(server, reader, writer):
            full, top1 = await _ask(
                reader,
                writer,
                {"op": "recommend", "user": 0, "top_n": 1000},
                {"op": "recommend", "user": 0, "top_n": 1},
            )
            assert full["ok"] and top1["ok"]
            assert len(top1["items"]) <= 1
            if full["items"]:
                assert top1["items"] == full["items"][:1]

        asyncio.run(_with_server(index, scenario))

    def test_stats_op(self, index):
        async def scenario(server, reader, writer):
            (stats,) = await _ask(reader, writer, {"op": "stats"})
            assert stats["ok"] is True
            assert stats["version"] == index.snapshot_version
            assert stats["n_users"] == index.n_users
            assert stats["k"] == index.config.k
            assert stats["requests"] >= 1
            assert stats["last_seq"] == index.last_seq
            assert stats["snapshot_lag"] == 0
            assert stats["dirty_users"] == 0
            assert "scheduler" not in stats  # none attached

        asyncio.run(_with_server(index, scenario))

    def test_stats_op_reports_snapshot_lag(self, index):
        """Unrefreshed applied events show up as snapshot lag."""
        index.refresh()  # publish version = last_seq = 0
        index.apply(AddRating(0, 3, 4.0))
        index.apply(AddRating(1, 3, 2.0))

        async def scenario(server, reader, writer):
            (stats,) = await _ask(reader, writer, {"op": "stats"})
            assert stats["last_seq"] == 2
            assert stats["snapshot_lag"] == 2
            assert stats["dirty_users"] == 2

        asyncio.run(_with_server(index, scenario))

    def test_stats_op_folds_in_scheduler(self, index):
        from repro import RefreshScheduler, SchedulerPolicy
        from repro.streaming import ratings_batch

        scheduler = RefreshScheduler(
            index,
            SchedulerPolicy(max_event_lag=100, max_dirty_per_refresh=1),
        )
        scheduler.submit(ratings_batch([0, 1, 2], [3, 3, 3], [4.0] * 3))

        async def scenario(server, reader, writer):
            (stats,) = await _ask(reader, writer, {"op": "stats"})
            block = stats["scheduler"]
            assert block["queue_depth"] == 3
            assert block["pending_events"] == 3
            assert block["last_seq"] == 3
            assert block["snapshot_lag"] == stats["snapshot_lag"]
            assert block["queue_bound"] is None
            json.dumps(block)  # every value stays JSON-serialisable

        asyncio.run(
            _with_server(index, scenario, scheduler=scheduler)
        )

    def test_blank_lines_are_skipped(self, index):
        async def scenario(server, reader, writer):
            stats_line = json.dumps({"op": "stats"}).encode()
            writer.write(b"\n\n" + stats_line + b"\n")
            await writer.drain()
            reply = json.loads(
                await asyncio.wait_for(reader.readline(), timeout=10)
            )
            assert reply["ok"] is True

        asyncio.run(_with_server(index, scenario))


class TestErrors:
    @pytest.mark.parametrize(
        "request_body, expect",
        [
            ({"op": "teleport"}, "unknown op"),
            ({"op": "neighbors", "user": 10_000}, "out of range"),
            ({"op": "neighbors"}, "KeyError"),
            ([1, 2, 3], "JSON object"),
        ],
    )
    def test_bad_requests_get_error_envelopes(
        self, index, request_body, expect
    ):
        async def scenario(server, reader, writer):
            bad, good = await _ask(
                reader, writer, request_body, {"op": "stats"}
            )
            assert bad["ok"] is False
            assert expect in bad["error"]
            # The connection survives a bad request.
            assert good["ok"] is True

        asyncio.run(_with_server(index, scenario))

    def test_malformed_json_gets_error_envelope(self, index):
        async def scenario(server, reader, writer):
            writer.write(b"{not json\n")
            await writer.drain()
            reply = json.loads(
                await asyncio.wait_for(reader.readline(), timeout=10)
            )
            assert reply["ok"] is False
            assert "JSONDecodeError" in reply["error"]

        asyncio.run(_with_server(index, scenario))

    def test_closed_index_reported_per_request(self, index):
        async def scenario(server, reader, writer):
            index.close()
            (reply,) = await _ask(reader, writer, {"op": "stats"})
            assert reply["ok"] is False
            assert "closed" in reply["error"]

        asyncio.run(_with_server(index, scenario))


class TestBatching:
    def test_pipelined_burst_coalesces_to_one_version(self, index):
        async def scenario(server, reader, writer):
            replies = await _ask(
                reader,
                writer,
                *({"op": "neighbors", "user": user} for user in range(12)),
            )
            versions = {reply["version"] for reply in replies}
            assert versions == {index.snapshot_version}
            assert [reply["user"] for reply in replies] == list(range(12))
            # The burst arrived in one TCP write, so the dispatcher
            # answered it in far fewer batches than requests.
            assert server.batches < server.requests
            assert server.max_batch_seen > 1

        asyncio.run(_with_server(index, scenario))

    def test_replies_track_published_versions(self, index):
        async def scenario(server, reader, writer):
            (before,) = await _ask(
                reader, writer, {"op": "neighbors", "user": 1}
            )
            index.apply(AddRating(1, 2, 5.0))
            index.refresh()
            (after,) = await _ask(
                reader, writer, {"op": "neighbors", "user": 1}
            )
            assert before["version"] == 0
            assert after["version"] == index.last_seq

        asyncio.run(_with_server(index, scenario))

    def test_two_connections_share_the_dispatcher(self, index):
        async def scenario(server, reader, writer):
            host, port = server.address
            reader2, writer2 = await asyncio.open_connection(host, port)
            try:
                (a,), (b,) = await asyncio.gather(
                    _ask(reader, writer, {"op": "stats"}),
                    _ask(reader2, writer2, {"op": "stats"}),
                )
                assert a["ok"] and b["ok"]
            finally:
                writer2.close()

        asyncio.run(_with_server(index, scenario))


class TestLifecycle:
    def test_stop_is_idempotent(self, index):
        async def scenario():
            server = KnnServer(index, port=0)
            await server.start()
            await server.stop()
            await server.stop()

        asyncio.run(scenario())

    def test_address_requires_start(self, index):
        with pytest.raises(RuntimeError, match="not started"):
            KnnServer(index).address

    def test_serve_until_event(self, index):
        async def scenario():
            server = KnnServer(index, port=0)
            await server.start()
            stop = asyncio.Event()
            task = asyncio.create_task(server.serve_until(stop))
            await asyncio.sleep(0)
            stop.set()
            await asyncio.wait_for(task, timeout=10)
            assert server._server is None

        asyncio.run(scenario())
