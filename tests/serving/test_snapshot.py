"""GraphSnapshot publication semantics: MVCC without locks."""

import numpy as np
import pytest

from repro import (
    AddRating,
    DynamicKnnIndex,
    GraphSnapshot,
    KiffConfig,
    RemoveRating,
    ShardedKnnIndex,
)
from repro.streaming import cold_rebuild_graph
from tests.conftest import random_dataset
from tests.streaming.test_parity import drive_random_stream


def _absent_rating(index) -> RemoveRating:
    """A RemoveRating event for an edge the dataset does not hold."""
    dataset = index.dataset
    for user in range(dataset.n_users):
        rated = set(dataset.user_items(user).tolist())
        for item in range(dataset.n_items):
            if item not in rated:
                return RemoveRating(user, item)
    raise AssertionError("dataset is dense; no absent edge to retract")


@pytest.fixture
def index():
    dataset = random_dataset(
        n_users=18, n_items=14, density=0.15, seed=3, ratings=True
    )
    ix = DynamicKnnIndex(dataset, KiffConfig(k=4), auto_refresh=False)
    yield ix
    ix.close()


class TestPublication:
    def test_initial_build_publishes_version_zero(self, index):
        snapshot = index.pin()
        assert isinstance(snapshot, GraphSnapshot)
        assert snapshot.version == 0
        assert index.snapshot_version == 0

    def test_pin_returns_latest_published(self, index):
        index.apply(AddRating(0, 1, 5.0))
        # Not yet refreshed: pin still answers at the old version.
        assert index.pin().version == 0
        index.refresh()
        assert index.pin().version == index.last_seq == 1

    def test_version_is_covering_wal_sequence(self, index):
        drive_random_stream(index, seed=5, n_events=12)
        assert index.pin().version == index.last_seq

    def test_rebuild_publishes(self, index):
        index.apply(AddRating(2, 3, 4.0))
        index.rebuild()
        assert index.pin().version == index.last_seq

    def test_deferred_build_has_no_snapshot_until_refresh(self):
        dataset = random_dataset(n_users=10, n_items=8, seed=1)
        ix = DynamicKnnIndex(
            dataset, KiffConfig(k=3), auto_refresh=False, build=False
        )
        try:
            assert ix.snapshot_version is None
            with pytest.raises(RuntimeError, match="no snapshot published"):
                ix.pin()
            ix.refresh()
            assert ix.pin().version == 0
        finally:
            ix.close()

    def test_noop_refresh_republishes_shared_arrays(self, index):
        before = index.pin()
        # A retraction of a rating that does not exist absorbs the
        # event (sequence advances) but dirties nobody.
        index.apply(_absent_rating(index))
        index.refresh()
        after = index.pin()
        assert after.version == index.last_seq == before.version + 1
        # The no-op republish shares the previous snapshot's packed rows
        # (the dense ``neighbors``/``sims`` views are rebuilt per access).
        assert after.indptr is before.indptr
        assert after.packed_ids is before.packed_ids
        assert after.packed_sims is before.packed_sims
        assert after.dataset is before.dataset

    def test_snapshot_matches_live_graph(self, index):
        drive_random_stream(index, seed=2, n_events=15)
        assert index.pin().graph() == index.graph


class TestImmutability:
    def test_arrays_are_read_only(self, index):
        snapshot = index.pin()
        for array in (
            snapshot.indptr,
            snapshot.packed_ids,
            snapshot.packed_sims,
            snapshot.norms,
            snapshot.sizes,
        ):
            assert not array.flags.writeable
            with pytest.raises(ValueError):
                array[0] = 0

    def test_pinned_snapshot_survives_refreshes_bit_unchanged(self, index):
        pinned = index.pin()
        neighbors = pinned.neighbors.copy()
        sims = pinned.sims.copy()
        seen = {
            user: pinned.dataset.user_items(user).copy()
            for user in range(pinned.n_users)
        }
        drive_random_stream(index, seed=9, n_events=25)
        assert index.pin().version > pinned.version
        np.testing.assert_array_equal(pinned.neighbors, neighbors)
        np.testing.assert_array_equal(pinned.sims, sims)
        for user, items in seen.items():
            np.testing.assert_array_equal(
                pinned.dataset.user_items(user), items
            )

    def test_at_version_shares_state(self, index):
        snapshot = index.pin()
        bumped = snapshot.at_version(41)
        assert bumped.version == 41
        assert bumped.packed_ids is snapshot.packed_ids
        assert bumped.packed_sims is snapshot.packed_sims
        assert snapshot.version == 0  # the original is untouched


class TestRowAccessors:
    def test_neighbors_of_drops_missing(self, index):
        snapshot = index.pin()
        graph = index.graph
        for user in range(snapshot.n_users):
            np.testing.assert_array_equal(
                snapshot.neighbors_of(user), graph.neighbors_of(user)
            )
            assert len(snapshot.sims_of(user)) == len(
                snapshot.neighbors_of(user)
            )

    def test_shape_properties(self, index):
        snapshot = index.pin()
        assert snapshot.n_users == index.n_users
        assert snapshot.k == index.config.k


class TestShardedPublication:
    @pytest.mark.parametrize("executor", ["serial", "threads"])
    def test_sharded_refresh_publishes(self, executor):
        dataset = random_dataset(
            n_users=18, n_items=14, density=0.15, seed=4, ratings=True
        )
        ix = ShardedKnnIndex(
            dataset,
            KiffConfig(k=4),
            auto_refresh=False,
            n_shards=2,
            executor=executor,
        )
        try:
            assert ix.pin().version == 0
            drive_random_stream(ix, seed=4, n_events=15)
            snapshot = ix.pin()
            assert snapshot.version == ix.last_seq
            assert snapshot.graph() == ix.graph
            assert snapshot.graph() == cold_rebuild_graph(
                ix.dataset, ix.config
            )
        finally:
            ix.close()

    def test_sharded_noop_refresh_bumps_version(self):
        dataset = random_dataset(n_users=12, n_items=10, seed=6)
        ix = ShardedKnnIndex(
            dataset, KiffConfig(k=3), auto_refresh=False, n_shards=2
        )
        try:
            before = ix.pin()
            ix.apply(_absent_rating(ix))
            ix.refresh()
            after = ix.pin()
            assert after.version == before.version + 1
            assert after.packed_ids is before.packed_ids
        finally:
            ix.close()
