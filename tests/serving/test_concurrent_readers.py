"""Concurrent readers vs a live writer: the lock-free serving contract.

N reader threads hammer ``pin()`` + query while the writer thread
applies the parity corpus's event stream and refreshes.  Every sampled
response must be bit-identical to a cold recomputation against the
published snapshot of the version it reports, versions must be
monotonic per reader, and every published snapshot must itself be in
exact parity with a cold KIFF rebuild on its own dataset view.
"""

import threading

import numpy as np
import pytest

from repro import DynamicKnnIndex, KiffConfig, ShardedKnnIndex
from repro.serving import neighbors_on, recommend_on
from repro.streaming import AddRating, AddUser, RemoveUser, cold_rebuild_graph
from tests.conftest import random_dataset

N_READERS = 4
N_EVENTS = 40
REFRESH_EVERY = 5


def _make_index(kind):
    dataset = random_dataset(
        n_users=18, n_items=14, density=0.15, seed=21, ratings=True
    )
    config = KiffConfig(k=4)
    if kind == "dynamic":
        return DynamicKnnIndex(dataset, config, auto_refresh=False)
    return ShardedKnnIndex(
        dataset, config, auto_refresh=False, n_shards=2, executor=kind
    )


def _random_event(rng, n_users, max_item=14):
    op = rng.integers(0, 10)
    if op < 6:
        return AddRating(
            int(rng.integers(0, n_users)),
            int(rng.integers(0, max_item)),
            float(rng.integers(1, 6)),
        )
    if op < 8:
        size = int(rng.integers(1, 4))
        return AddUser(
            tuple(rng.choice(max_item, size=size, replace=False).tolist()),
            tuple(rng.integers(1, 6, size=size).astype(float).tolist()),
        )
    return RemoveUser(int(rng.integers(0, n_users)))


@pytest.mark.parametrize(
    "kind", ["dynamic", "serial", "threads", "processes"]
)
def test_readers_never_observe_torn_or_stale_state(kind):
    index = _make_index(kind)
    try:
        first = index.pin()
        published = {first.version: first}
        errors: list[BaseException] = []
        done = threading.Event()

        def write_stream() -> None:
            try:
                rng = np.random.default_rng(21)
                for event_no in range(1, N_EVENTS + 1):
                    index.apply(_random_event(rng, index.n_users))
                    if event_no % REFRESH_EVERY == 0:
                        index.refresh()
                        snapshot = index.pin()
                        published[snapshot.version] = snapshot
                index.refresh()
                snapshot = index.pin()
                published[snapshot.version] = snapshot
            except BaseException as error:
                errors.append(error)
            finally:
                done.set()

        def read_queries(seed: int, out: list) -> None:
            try:
                rng = np.random.default_rng(seed)
                while not done.is_set():
                    snapshot = index.pin()
                    user = int(rng.integers(0, snapshot.n_users))
                    if rng.random() < 0.5:
                        reply = neighbors_on(snapshot, user)
                    else:
                        reply = recommend_on(snapshot, user)
                    out.append(reply)
            except BaseException as error:
                errors.append(error)

        reader_logs: list[list] = [[] for _ in range(N_READERS)]
        readers = [
            threading.Thread(target=read_queries, args=(100 + pos, log))
            for pos, log in enumerate(reader_logs)
        ]
        writer = threading.Thread(target=write_stream)
        for thread in readers:
            thread.start()
        writer.start()
        writer.join(timeout=120)
        for thread in readers:
            thread.join(timeout=120)
        assert not errors, errors

        # Readers saw only published versions, monotonically.
        total = 0
        for log in reader_logs:
            versions = [reply.version for reply in log]
            assert all(
                later >= earlier
                for earlier, later in zip(versions, versions[1:])
            ), "snapshot versions went backwards within one reader"
            for reply in log:
                assert reply.version in published
                snapshot = published[reply.version]
                if isinstance(reply, type(neighbors_on(snapshot, 0))):
                    cold = neighbors_on(snapshot, reply.user)
                else:
                    cold = recommend_on(snapshot, reply.user)
                assert cold == reply, (
                    f"response at version {reply.version} is not "
                    f"bit-identical to a cold query on that snapshot"
                )
                total += 1
        assert total > 0, "readers never completed a query"

        # Every published snapshot is itself exact: parity with a cold
        # converged KIFF rebuild on its own dataset view.
        for snapshot in published.values():
            assert snapshot.graph() == cold_rebuild_graph(
                snapshot.dataset, index.config
            )
        assert index.pin().version == index.last_seq == N_EVENTS
    finally:
        index.close()
