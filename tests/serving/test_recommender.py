"""Top-N recommendation queries against pinned snapshots.

Includes the regression suite for the seen-items exclusion bug: the
exclusion set must come from the snapshot's own dataset view, so a
rating streamed into the index is never recommended back once a fresh
snapshot is pinned — while the stale pin keeps its consistent view.
"""

import numpy as np
import pytest

from repro import (
    AddRating,
    DynamicKnnIndex,
    KiffConfig,
    Recommender,
    neighbors_on,
    recommend_on,
)
from tests.conftest import random_dataset


@pytest.fixture
def index():
    dataset = random_dataset(
        n_users=25, n_items=18, density=0.25, seed=8, ratings=True
    )
    ix = DynamicKnnIndex(dataset, KiffConfig(k=5), auto_refresh=False)
    yield ix
    ix.close()


def _user_with_recommendations(snapshot) -> int:
    for user in range(snapshot.n_users):
        if recommend_on(snapshot, user, top_n=1).items:
            return user
    raise AssertionError("no user has any recommendation")


class TestNeighborsOn:
    def test_matches_graph_row(self, index):
        snapshot = index.pin()
        graph = index.graph
        for user in range(snapshot.n_users):
            reply = neighbors_on(snapshot, user)
            assert reply.user == user
            assert reply.version == snapshot.version
            assert list(reply.neighbors) == graph.neighbors_of(user).tolist()
            np.testing.assert_allclose(
                reply.sims, graph.sims_of(user).tolist()
            )

    def test_out_of_range_user_names_version(self, index):
        with pytest.raises(IndexError, match="snapshot version 0"):
            neighbors_on(index.pin(), index.n_users)
        with pytest.raises(IndexError):
            neighbors_on(index.pin(), -1)


class TestRecommendOn:
    def test_never_recommends_seen_items(self, index):
        snapshot = index.pin()
        for user in range(snapshot.n_users):
            rec = recommend_on(snapshot, user)
            seen = set(snapshot.dataset.user_items(user).tolist())
            assert not seen & set(rec.items)

    def test_scores_are_similarity_weighted_ratings(self, index):
        snapshot = index.pin()
        user = _user_with_recommendations(snapshot)
        rec = recommend_on(snapshot, user, min_neighbor_rating=3.5)
        dataset = snapshot.dataset
        seen = set(dataset.user_items(user).tolist())
        expected: dict[int, float] = {}
        for neighbor, sim in zip(
            snapshot.neighbors_of(user).tolist(),
            snapshot.sims_of(user).tolist(),
        ):
            if sim <= 0.0:
                continue
            for item, rating in zip(
                dataset.user_items(neighbor).tolist(),
                dataset.user_ratings(neighbor).tolist(),
            ):
                if item not in seen and rating >= 3.5:
                    expected[item] = expected.get(item, 0.0) + sim * rating
        assert set(rec.items) <= set(expected)
        for item, score in zip(rec.items, rec.scores):
            assert score == pytest.approx(expected[item])
        # Ranked by score descending, ties by item id ascending.
        keys = [(-score, item) for item, score in zip(rec.items, rec.scores)]
        assert keys == sorted(keys)

    def test_top_n_truncates(self, index):
        snapshot = index.pin()
        user = _user_with_recommendations(snapshot)
        full = recommend_on(snapshot, user, top_n=1000)
        top1 = recommend_on(snapshot, user, top_n=1)
        assert len(top1.items) == 1
        assert top1.items[0] == full.items[0]

    def test_min_neighbor_rating_filters(self, index):
        snapshot = index.pin()
        lax = recommend_on(snapshot, 0, top_n=1000, min_neighbor_rating=1.0)
        strict = recommend_on(
            snapshot, 0, top_n=1000, min_neighbor_rating=6.0
        )
        assert strict.items == ()
        assert len(lax.items) >= len(
            recommend_on(snapshot, 0, top_n=1000).items
        )

    def test_deterministic(self, index):
        snapshot = index.pin()
        for user in range(5):
            assert recommend_on(snapshot, user) == recommend_on(
                snapshot, user
            )


class TestStreamedExclusionRegression:
    def test_fresh_pin_excludes_streamed_rating(self, index):
        """The historical bug: the exclusion set was frozen at the
        training split, so a rating streamed later could be recommended
        straight back.  The snapshot's own dataset view must move."""
        stale = index.pin()
        user = _user_with_recommendations(stale)
        top_item = recommend_on(stale, user, top_n=1).items[0]
        index.apply(AddRating(user, top_item, 5.0))
        index.refresh()
        fresh = index.pin()
        assert top_item in recommend_on(stale, user, top_n=1000).items
        assert top_item not in recommend_on(fresh, user, top_n=1000).items


class TestRecommender:
    def test_pins_fresh_snapshot_per_query(self, index):
        recommender = Recommender(index, top_n=3)
        before = recommender.recommend(0)
        assert before.version == 0
        index.apply(AddRating(0, 1, 5.0))
        index.refresh()
        assert recommender.recommend(0).version == index.last_seq
        assert recommender.neighbors(0).version == index.last_seq

    def test_explicit_snapshot_wins(self, index):
        recommender = Recommender(index)
        pinned = recommender.pin()
        index.apply(AddRating(0, 1, 5.0))
        index.refresh()
        assert recommender.recommend(0, snapshot=pinned).version == 0
        assert recommender.neighbors(0, snapshot=pinned).version == 0

    def test_configured_defaults_apply(self, index):
        user = _user_with_recommendations(index.pin())
        recommender = Recommender(index, top_n=1, min_neighbor_rating=1.0)
        assert len(recommender.recommend(user).items) == 1
        assert len(recommender.recommend(user, top_n=1000).items) >= 1

    def test_closed_index_raises(self, index):
        recommender = Recommender(index)
        index.close()
        with pytest.raises(RuntimeError, match="closed"):
            recommender.recommend(0)
