"""The kernel-backend contract: parity, selection, transport.

* The ``numpy`` backend must be **bit-identical** to the historical
  scipy evaluation (fancy-index + ``.multiply().sum(axis=1)``) — the
  oracle is re-implemented inline here, and the streaming parity corpus
  keeps gating the end-to-end graphs.
* Compiled backends (``numba``, ``torch``) carry a tolerance-based
  parity contract against the numpy backend; their suites skip when the
  optional dependency is missing.
* Selection order: config > CLI (which writes the config field) > the
  ``REPRO_KERNEL_BACKEND`` environment variable > ``numpy``; a known
  but unavailable backend falls back to numpy with exactly one warning.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import DynamicKnnIndex, KiffConfig
from repro.cli import build_parser
from repro.similarity import kernels
from repro.similarity.base import ProfileIndex
from repro.similarity.engine import SimilarityEngine, get_metric
from repro.similarity.kernels import (
    KernelBackend,
    KernelUnavailable,
    resolve_backend,
)
from repro.streaming import cold_rebuild_graph
from repro.streaming.sharding import score_pairs_chunked
from tests.conftest import random_dataset
from tests.streaming.test_parity import drive_random_stream

METRICS = ["cosine", "jaccard", "dice", "overlap", "adamic_adar", "pearson"]

needs_numba = pytest.mark.skipif(
    "numba" not in kernels.available_backends(),
    reason="numba is not installed",
)
needs_torch = pytest.mark.skipif(
    "torch" not in kernels.available_backends(),
    reason="torch is not installed",
)
COMPILED = [
    pytest.param("numba", marks=needs_numba),
    pytest.param("torch", marks=needs_torch),
]


def scipy_oracle(metric_name, index, us, vs):
    """The historical scipy evaluation plus the float32 score boundary.

    Formulas run verbatim in float64; the single ``astype(float32)`` on
    the way out mirrors the kernel finalize boundary (``repro.layout``),
    so bit-identity still pins the full float64 evaluation order.
    """

    def pairwise_dot(matrix, other):
        return np.asarray(
            matrix[us].multiply(other[vs]).sum(axis=1)
        ).ravel()

    if metric_name == "cosine":
        dots = pairwise_dot(index.matrix, index.matrix)
        denominators = index.norms[us] * index.norms[vs]
    elif metric_name == "pearson":
        matrix, norms = index.centered
        dots = pairwise_dot(matrix, matrix)
        denominators = norms[us] * norms[vs]
    elif metric_name == "adamic_adar":
        return pairwise_dot(index.adamic_adar_matrix, index.binary).astype(
            np.float32
        )
    else:
        intersections = pairwise_dot(index.binary, index.binary)
        if metric_name == "overlap":
            return intersections.astype(np.float32)
        if metric_name == "jaccard":
            denominators = index.sizes[us] + index.sizes[vs] - intersections
        else:  # dice
            intersections = 2.0 * intersections
            denominators = (index.sizes[us] + index.sizes[vs]).astype(
                np.float64
            )
        dots = intersections
    out = np.zeros(len(us), dtype=np.float64)
    mask = denominators > 0
    out[mask] = dots[mask] / denominators[mask]
    return out.astype(np.float32)


def random_pairs(n_users, n_pairs=400, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, n_users, n_pairs),
        rng.integers(0, n_users, n_pairs),
    )


@pytest.fixture(params=[False, True], ids=["binary", "rated"])
def fixture_index(request):
    dataset = random_dataset(
        n_users=50, n_items=30, density=0.15, seed=7, ratings=request.param
    )
    return ProfileIndex(dataset)


class TestNumpyBitIdentity:
    """The numpy backend reproduces the scipy path bit for bit."""

    @pytest.mark.parametrize("metric_name", METRICS)
    def test_score_batch_equals_scipy_oracle(self, fixture_index, metric_name):
        metric = get_metric(metric_name)
        us, vs = random_pairs(fixture_index.n_users)
        got = metric.score_batch(fixture_index, us, vs)
        expected = scipy_oracle(metric_name, fixture_index, us, vs)
        assert fixture_index.kernel.name == "numpy"
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("metric_name", METRICS)
    def test_long_intersections_stay_bit_identical(self, metric_name):
        # >128 common items per pair would expose any pairwise-summation
        # reordering (numpy's reduce optimisation) — reduceat must stay
        # sequential like scipy's row sum.
        dataset = random_dataset(
            n_users=8, n_items=600, density=0.6, seed=3, ratings=True
        )
        index = ProfileIndex(dataset)
        us = np.repeat(np.arange(8), 8)
        vs = np.tile(np.arange(8), 8)
        metric = get_metric(metric_name)
        got = metric.score_batch(index, us, vs)
        assert np.array_equal(got, scipy_oracle(metric_name, index, us, vs))

    @pytest.mark.parametrize("metric_name", METRICS)
    def test_batch_agrees_with_pair_and_block(
        self, fixture_index, metric_name
    ):
        metric = get_metric(metric_name)
        us, vs = random_pairs(fixture_index.n_users, n_pairs=120, seed=1)
        batch = metric.score_batch(fixture_index, us, vs)
        pairs = np.array(
            [
                metric.score_pair(fixture_index, int(u), int(v))
                for u, v in zip(us, vs)
            ]
        )
        block = metric.score_block(fixture_index, us)
        block_vals = block[np.arange(us.size), vs]
        # score_pair/score_block stay float64 (they are internal paths);
        # batch carries the at-rest float32 cast, so compare after
        # pushing the raw values through the same boundary.
        assert batch == pytest.approx(
            pairs.astype(np.float32), rel=1e-6, abs=1e-7
        )
        assert batch == pytest.approx(
            block_vals.astype(np.float32), rel=1e-6, abs=1e-7
        )

    def test_empty_and_self_pairs(self, fixture_index):
        metric = get_metric("cosine")
        empty = np.empty(0, dtype=np.int64)
        assert metric.score_batch(fixture_index, empty, empty).size == 0
        us = np.arange(fixture_index.n_users)
        got = metric.score_batch(fixture_index, us, us)
        expected = scipy_oracle("cosine", fixture_index, us, us)
        assert np.array_equal(got, expected)

    def test_empty_profile_pairs_score_zero(self):
        dataset = random_dataset(
            n_users=30, n_items=10, density=0.05, seed=11
        )
        index = ProfileIndex(dataset)
        empty_users = np.flatnonzero(index.sizes == 0)
        assert empty_users.size, "fixture needs at least one empty profile"
        us = np.repeat(empty_users, 3)
        vs = np.tile(empty_users[:1], us.size)
        for metric_name in METRICS:
            got = get_metric(metric_name).score_batch(index, us, vs)
            assert np.array_equal(got, np.zeros(us.size))


class TestCompiledBackendParity:
    """numba/torch match numpy within tolerance (skipped when absent)."""

    @pytest.mark.parametrize("metric_name", METRICS)
    @pytest.mark.parametrize("backend_name", COMPILED)
    def test_score_batch_close_to_numpy(
        self, fixture_index, backend_name, metric_name
    ):
        metric = get_metric(metric_name)
        us, vs = random_pairs(fixture_index.n_users)
        fixture_index._kernel_backend = "numpy"
        expected = metric.score_batch(fixture_index, us, vs)
        fixture_index._kernel_backend = backend_name
        got = metric.score_batch(fixture_index, us, vs)
        assert fixture_index.kernel.name == backend_name
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("metric_name", METRICS)
    @pytest.mark.parametrize("backend_name", COMPILED)
    def test_pair_and_block_paths_stay_close(
        self, fixture_index, backend_name, metric_name
    ):
        metric = get_metric(metric_name)
        us, vs = random_pairs(fixture_index.n_users, n_pairs=80, seed=2)
        fixture_index._kernel_backend = backend_name
        batch = metric.score_batch(fixture_index, us, vs)
        pairs = np.array(
            [
                metric.score_pair(fixture_index, int(u), int(v))
                for u, v in zip(us, vs)
            ]
        )
        block = metric.score_block(fixture_index, us)
        np.testing.assert_allclose(batch, pairs, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(
            batch, block[np.arange(us.size), vs], rtol=1e-9, atol=1e-12
        )

    @pytest.mark.parametrize("backend_name", COMPILED)
    def test_parity_corpus_stream(self, backend_name):
        # A maintained stream scored by the compiled backend stays
        # tolerance-close to the numpy-scored cold rebuild.
        dataset = random_dataset(
            n_users=18, n_items=14, density=0.15, seed=5, ratings=True
        )
        index = DynamicKnnIndex(
            dataset,
            KiffConfig(k=4, kernel_backend=backend_name),
            auto_refresh=False,
        )
        drive_random_stream(index, seed=5)
        reference = cold_rebuild_graph(
            index.dataset, KiffConfig(k=4, kernel_backend="numpy")
        )
        finite = np.isfinite(reference.sims)
        np.testing.assert_allclose(
            index.graph.sims[finite],
            reference.sims[finite],
            rtol=1e-9,
            atol=1e-12,
        )


class TestNumpyStreamParity:
    """End-to-end: explicit numpy backend keeps exact stream parity."""

    @pytest.mark.parametrize("seed", range(4))
    def test_stream_equals_cold_rebuild(self, seed):
        dataset = random_dataset(
            n_users=18, n_items=14, density=0.15, seed=seed, ratings=True
        )
        config = KiffConfig(k=4, kernel_backend="numpy")
        index = DynamicKnnIndex(dataset, config, auto_refresh=False)
        drive_random_stream(index, seed)
        assert index.graph == cold_rebuild_graph(index.dataset, config)


class TestBackendSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV_VAR, raising=False)
        assert resolve_backend(None).name == "numpy"
        assert ProfileIndex(random_dataset(n_users=5)).kernel.name == "numpy"

    def test_env_var_selects_backend(self, monkeypatch):
        class DummyBackend(KernelBackend):
            name = "dummy-env"

            def score_pairs(self, *args, **kwargs):  # pragma: no cover
                raise NotImplementedError

        kernels.register_backend("dummy-env", DummyBackend)
        try:
            monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "dummy-env")
            assert resolve_backend(None).name == "dummy-env"
        finally:
            kernels._FACTORIES.pop("dummy-env", None)
            kernels._INSTANCES.pop("dummy-env", None)

    def test_config_beats_env(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "torch")
        dataset = random_dataset(n_users=8, n_items=6, seed=1)
        engine = SimilarityEngine(dataset, kernel_backend="numpy")
        assert engine.index.kernel.name == "numpy"

    def test_cli_flag_writes_config(self):
        args = build_parser().parse_args(
            ["stream", "--kernel-backend", "numpy"]
        )
        assert args.kernel_backend == "numpy"
        config = KiffConfig(k=3, kernel_backend=args.kernel_backend)
        index = DynamicKnnIndex(
            random_dataset(n_users=8, n_items=6, seed=2),
            config,
            auto_refresh=False,
        )
        assert index.engine.index.kernel.name == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError, match="unknown kernel backend"):
            resolve_backend("no-such-backend")
        with pytest.raises(ValueError, match="unknown kernel_backend"):
            KiffConfig(kernel_backend="no-such-backend")

    def test_instance_passthrough(self):
        backend = resolve_backend("numpy")
        assert resolve_backend(backend) is backend

    def test_missing_dependency_warns_exactly_once(self):
        def unavailable():
            raise KernelUnavailable("install it")

        kernels.register_backend("missing-dep", unavailable)
        try:
            with pytest.warns(RuntimeWarning, match="missing-dep"):
                first = resolve_backend("missing-dep")
            assert first.name == "numpy"
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                second = resolve_backend("missing-dep")
            assert second.name == "numpy"
        finally:
            kernels._FACTORIES.pop("missing-dep", None)
            kernels._WARNED.discard("missing-dep")

    def test_engine_rebind_preserves_backend(self):
        dataset = random_dataset(n_users=10, n_items=8, seed=3)
        engine = SimilarityEngine(dataset, kernel_backend="numpy")
        resolved = engine.index.kernel
        engine.rebind(random_dataset(n_users=10, n_items=8, seed=4))
        assert engine.index.kernel is resolved


class TestScorePairsChunked:
    def test_chunked_matches_single_batch(self, fixture_index):
        metric = get_metric("cosine")
        us, vs = random_pairs(fixture_index.n_users, n_pairs=257, seed=9)
        whole = metric.score_batch(fixture_index, us, vs)
        chunked = score_pairs_chunked(
            metric, fixture_index, us, vs, batch_size=64
        )
        assert np.array_equal(whole, chunked)

    def test_kernel_argument_binds_backend(self, fixture_index):
        metric = get_metric("jaccard")
        us, vs = random_pairs(fixture_index.n_users, n_pairs=50, seed=4)
        out = score_pairs_chunked(
            metric, fixture_index, us, vs, batch_size=16, kernel="numpy"
        )
        assert fixture_index.kernel.name == "numpy"
        assert np.array_equal(
            out, scipy_oracle("jaccard", fixture_index, us, vs)
        )


class TestSharedArraysFlag:
    def test_binary_dataset_ships_flag_not_data(self):
        index = ProfileIndex(random_dataset(n_users=20, n_items=10, seed=6))
        arrays = index.to_shared_arrays()
        assert "dataset_data" not in arrays
        assert "dataset_data_all_ones" in arrays
        assert arrays["dataset_data_all_ones"].nbytes == 1

    def test_rated_dataset_ships_data(self):
        index = ProfileIndex(
            random_dataset(n_users=20, n_items=10, seed=6, ratings=True)
        )
        arrays = index.to_shared_arrays()
        assert "dataset_data_all_ones" not in arrays
        assert arrays["dataset_data"] is index.matrix.data

    @pytest.mark.parametrize("ratings", [False, True])
    def test_round_trip_rebuilds_identical_scores(self, ratings):
        index = ProfileIndex(
            random_dataset(n_users=20, n_items=10, seed=8, ratings=ratings)
        )
        rebuilt = ProfileIndex.from_shared_arrays(index.to_shared_arrays())
        assert np.array_equal(
            rebuilt.matrix.toarray(), index.matrix.toarray()
        )
        if not ratings:
            # Re-derived ones are shared with the binarised twin rather
            # than allocated twice (scipy may rewrap the buffer in a
            # fresh ndarray view, so compare memory, not identity).
            assert np.shares_memory(rebuilt.binary.data, rebuilt.matrix.data)
        us, vs = random_pairs(index.n_users, n_pairs=60, seed=8)
        for metric_name in METRICS:
            metric = get_metric(metric_name)
            assert np.array_equal(
                metric.score_batch(rebuilt, us, vs),
                metric.score_batch(index, us, vs),
            )


class TestAdamicAdarWeights:
    def test_weights_match_matrix_cache(self):
        index = ProfileIndex(
            random_dataset(n_users=25, n_items=12, density=0.3, seed=10)
        )
        weights = index.adamic_adar_weights
        aa = index.adamic_adar_matrix
        degrees = np.asarray(index.binary.sum(axis=0)).ravel()
        expected = np.zeros(index.n_items)
        mask = degrees >= 2
        expected[mask] = 1.0 / np.log(degrees[mask])
        assert np.array_equal(weights, expected)
        # The eliminated (weight-zero) entries are exactly the ones
        # missing from the weighted matrix.
        assert aa.nnz == int(np.count_nonzero(weights[index.matrix.indices]))

    def test_incremental_update_keeps_weights_exact(self):
        dataset = random_dataset(
            n_users=25, n_items=12, density=0.3, seed=12
        )
        index = ProfileIndex(dataset)
        index.adamic_adar_weights  # prime the caches
        # Rewrite one user's profile; per the documented non-profile-
        # local semantics every rater of the touched items is dirtied.
        from repro.streaming import AddRating

        streaming = DynamicKnnIndex(
            dataset,
            KiffConfig(k=3),
            metric="adamic_adar",
            auto_refresh=False,
            build=False,
        )
        streaming.apply(AddRating(0, 3, 1.0))
        new_dataset = streaming.builder.snapshot()
        dirty = set(streaming._dirty)
        index.update(new_dataset, dirty)
        fresh = ProfileIndex(new_dataset)
        assert np.array_equal(
            index.adamic_adar_weights, fresh.adamic_adar_weights
        )
        assert np.array_equal(
            index.adamic_adar_matrix.toarray(),
            fresh.adamic_adar_matrix.toarray(),
        )
