"""Unit tests for the similarity metrics.

Every metric must agree across its three evaluation paths (pair, batch,
block) and satisfy the paper's properties (5)/(6) on non-negative data.
"""

import math

import numpy as np
import pytest

from repro.similarity import (
    AdamicAdarSimilarity,
    CosineSimilarity,
    DiceSimilarity,
    JaccardSimilarity,
    OverlapSimilarity,
    ProfileIndex,
)

ALL_METRICS = [
    CosineSimilarity(),
    JaccardSimilarity(),
    AdamicAdarSimilarity(),
    OverlapSimilarity(),
    DiceSimilarity(),
]


def _all_pairs(n):
    us, vs = np.triu_indices(n, k=1)
    return us.astype(np.int64), vs.astype(np.int64)


@pytest.mark.parametrize("metric", ALL_METRICS, ids=lambda m: m.name)
class TestPathAgreement:
    def test_pair_equals_batch(self, metric, rated_dataset):
        index = ProfileIndex(rated_dataset)
        us, vs = _all_pairs(rated_dataset.n_users)
        batch = metric.score_batch(index, us, vs)
        for j, (u, v) in enumerate(zip(us, vs)):
            assert metric.score_pair(index, int(u), int(v)) == pytest.approx(
                batch[j], abs=1e-12
            )

    def test_batch_equals_block(self, metric, rated_dataset):
        index = ProfileIndex(rated_dataset)
        us, vs = _all_pairs(rated_dataset.n_users)
        batch = metric.score_batch(index, us, vs)
        block = metric.score_block(
            index, np.arange(rated_dataset.n_users, dtype=np.int64)
        )
        # score_block is an internal float64 path; batch carries the
        # at-rest float32 cast, so compare after the same boundary.
        for j, (u, v) in enumerate(zip(us, vs)):
            assert np.float32(block[u, v]) == pytest.approx(
                batch[j], rel=1e-6, abs=1e-7
            )

    def test_symmetry(self, metric, rated_dataset):
        index = ProfileIndex(rated_dataset)
        for u in range(rated_dataset.n_users):
            for v in range(rated_dataset.n_users):
                if u == v:
                    continue
                assert metric.score_pair(index, u, v) == pytest.approx(
                    metric.score_pair(index, v, u), abs=1e-12
                )

    def test_property_5_zero_without_shared_items(self, metric, toy_dataset):
        # Alice (0) and Carl (2) share nothing.
        index = ProfileIndex(toy_dataset)
        assert metric.score_pair(index, 0, 2) == 0.0

    def test_property_6_nonnegative_with_shared_items(self, metric, toy_dataset):
        # Alice (0) and Bob (1) share coffee.
        index = ProfileIndex(toy_dataset)
        assert metric.score_pair(index, 0, 1) >= 0.0
        assert metric.satisfies_overlap_properties


class TestCosine:
    def test_identical_profiles_score_one(self):
        from repro.datasets import BipartiteDataset

        ds = BipartiteDataset.from_profiles(
            [{0: 2.0, 1: 3.0}, {0: 2.0, 1: 3.0}], n_items=2
        )
        index = ProfileIndex(ds)
        assert CosineSimilarity().score_pair(index, 0, 1) == pytest.approx(1.0)

    def test_known_value(self, toy_dataset):
        # Alice {book, coffee}, Bob {coffee, cheese}: cos = 1/2.
        index = ProfileIndex(toy_dataset)
        assert CosineSimilarity().score_pair(index, 0, 1) == pytest.approx(0.5)

    def test_respects_rating_magnitudes(self, rated_dataset):
        index = ProfileIndex(rated_dataset)
        expected = np.dot([5.0, 1.0], [4.0, 2.0]) / (
            math.sqrt(25 + 9 + 1) * math.sqrt(16 + 4)
        )
        assert CosineSimilarity().score_pair(index, 0, 1) == pytest.approx(expected)

    def test_empty_profile_scores_zero(self):
        from repro.datasets import BipartiteDataset

        ds = BipartiteDataset.from_profiles([{0: 1.0}, {}], n_items=1)
        index = ProfileIndex(ds)
        assert CosineSimilarity().score_pair(index, 0, 1) == 0.0

    def test_bounded_by_one(self, tiny_wikipedia):
        index = ProfileIndex(tiny_wikipedia)
        us, vs = _all_pairs(min(tiny_wikipedia.n_users, 40))
        sims = CosineSimilarity().score_batch(index, us, vs)
        assert np.all(sims <= 1.0 + 1e-12)
        assert np.all(sims >= 0.0)


class TestJaccard:
    def test_known_value(self, toy_dataset):
        # |{coffee}| / |{book, coffee, cheese}| = 1/3.
        index = ProfileIndex(toy_dataset)
        assert JaccardSimilarity().score_pair(index, 0, 1) == pytest.approx(1 / 3)

    def test_identical_sets_score_one(self, toy_dataset):
        # Carl and Dave both like only shopping.
        index = ProfileIndex(toy_dataset)
        assert JaccardSimilarity().score_pair(index, 2, 3) == pytest.approx(1.0)

    def test_ignores_rating_values(self, rated_dataset):
        index = ProfileIndex(rated_dataset)
        binary_index = ProfileIndex(rated_dataset.binarized())
        metric = JaccardSimilarity()
        assert metric.score_pair(index, 0, 1) == pytest.approx(
            metric.score_pair(binary_index, 0, 1)
        )


class TestAdamicAdar:
    def test_rare_items_weigh_more(self):
        from repro.datasets import BipartiteDataset

        # Item 0 shared by 2 users; item 1 shared by all 4.
        ds = BipartiteDataset.from_profiles(
            [
                {0: 1.0, 1: 1.0},
                {0: 1.0, 1: 1.0},
                {1: 1.0},
                {1: 1.0},
            ],
            n_items=2,
        )
        index = ProfileIndex(ds)
        metric = AdamicAdarSimilarity()
        pair_with_rare = metric.score_pair(index, 0, 1)  # shares items 0 and 1
        pair_popular_only = metric.score_pair(index, 2, 3)  # shares item 1
        assert pair_with_rare > pair_popular_only
        # Exact values: 1/ln2 + 1/ln4 and 1/ln4.
        assert pair_with_rare == pytest.approx(
            1 / math.log(2) + 1 / math.log(4)
        )
        assert pair_popular_only == pytest.approx(1 / math.log(4))

    def test_degree_one_items_contribute_zero(self, toy_dataset):
        # book has |IP| = 1: it can never be shared, weight must be 0 and
        # Alice-Bob's score comes only from coffee (|IP| = 2).
        index = ProfileIndex(toy_dataset)
        assert AdamicAdarSimilarity().score_pair(index, 0, 1) == pytest.approx(
            1 / math.log(2)
        )


class TestOverlap:
    def test_counts_common_items(self, rated_dataset):
        index = ProfileIndex(rated_dataset)
        metric = OverlapSimilarity()
        assert metric.score_pair(index, 0, 3) == 3.0
        assert metric.score_pair(index, 0, 4) == 0.0

    def test_integer_valued(self, tiny_wikipedia):
        index = ProfileIndex(tiny_wikipedia)
        us, vs = _all_pairs(min(tiny_wikipedia.n_users, 30))
        sims = OverlapSimilarity().score_batch(index, us, vs)
        assert np.all(sims == sims.astype(int))
