"""Unit tests for the Dice and Pearson metrics."""

import numpy as np
import pytest

from repro.similarity import (
    DiceSimilarity,
    JaccardSimilarity,
    PearsonSimilarity,
    ProfileIndex,
    SimilarityEngine,
)
from repro.datasets import BipartiteDataset


def _all_pairs(n):
    us, vs = np.triu_indices(n, k=1)
    return us.astype(np.int64), vs.astype(np.int64)


class TestDice:
    def test_known_value(self, toy_dataset):
        # Alice {book, coffee}, Bob {coffee, cheese}: 2*1 / (2+2) = 0.5.
        index = ProfileIndex(toy_dataset)
        assert DiceSimilarity().score_pair(index, 0, 1) == pytest.approx(0.5)

    def test_identical_sets_score_one(self, toy_dataset):
        index = ProfileIndex(toy_dataset)
        assert DiceSimilarity().score_pair(index, 2, 3) == pytest.approx(1.0)

    def test_monotone_transform_of_jaccard(self, tiny_wikipedia):
        """Dice = 2J / (1 + J): the two metrics rank pairs identically."""
        index = ProfileIndex(tiny_wikipedia)
        us, vs = _all_pairs(40)
        jaccard = JaccardSimilarity().score_batch(index, us, vs)
        dice = DiceSimilarity().score_batch(index, us, vs)
        # jaccard already passed the float32 score boundary, so the
        # transform is accurate only to float32 resolution.
        np.testing.assert_allclose(
            dice, 2 * jaccard / (1 + jaccard), rtol=1e-6, atol=1e-7
        )

    def test_paths_agree(self, rated_dataset):
        index = ProfileIndex(rated_dataset)
        metric = DiceSimilarity()
        us, vs = _all_pairs(rated_dataset.n_users)
        batch = metric.score_batch(index, us, vs)
        block = metric.score_block(
            index, np.arange(rated_dataset.n_users, dtype=np.int64)
        )
        for j, (u, v) in enumerate(zip(us, vs)):
            pair = metric.score_pair(index, int(u), int(v))
            assert batch[j] == pytest.approx(pair)
            assert block[u, v] == pytest.approx(pair)

    def test_satisfies_overlap_properties(self, toy_dataset):
        index = ProfileIndex(toy_dataset)
        assert DiceSimilarity().satisfies_overlap_properties
        assert DiceSimilarity().score_pair(index, 0, 2) == 0.0


class TestPearson:
    def test_declared_not_overlap_safe(self):
        assert not PearsonSimilarity().satisfies_overlap_properties

    def test_can_be_negative(self):
        # Two users rate the same two items on opposite extremes.
        ds = BipartiteDataset.from_profiles(
            [{0: 5.0, 1: 1.0}, {0: 1.0, 1: 5.0}], n_items=2
        )
        index = ProfileIndex(ds)
        assert PearsonSimilarity().score_pair(index, 0, 1) < 0.0

    def test_property_5_still_holds(self, toy_dataset):
        # No shared items -> zero.
        index = ProfileIndex(toy_dataset)
        assert PearsonSimilarity().score_pair(index, 0, 2) == 0.0

    def test_identical_centred_profiles_score_one(self):
        ds = BipartiteDataset.from_profiles(
            [{0: 5.0, 1: 1.0, 2: 3.0}, {0: 5.0, 1: 1.0, 2: 3.0}], n_items=3
        )
        index = ProfileIndex(ds)
        assert PearsonSimilarity().score_pair(index, 0, 1) == pytest.approx(1.0)

    def test_constant_profile_scores_zero(self):
        # A user who rates everything identically has a zero-norm centred
        # vector -> similarity 0 with everyone.
        ds = BipartiteDataset.from_profiles(
            [{0: 3.0, 1: 3.0}, {0: 5.0, 1: 1.0}], n_items=2
        )
        index = ProfileIndex(ds)
        assert PearsonSimilarity().score_pair(index, 0, 1) == 0.0

    def test_paths_agree(self, rated_dataset):
        index = ProfileIndex(rated_dataset)
        metric = PearsonSimilarity()
        us, vs = _all_pairs(rated_dataset.n_users)
        batch = metric.score_batch(index, us, vs)
        block = metric.score_block(
            index, np.arange(rated_dataset.n_users, dtype=np.int64)
        )
        for j, (u, v) in enumerate(zip(us, vs)):
            pair = metric.score_pair(index, int(u), int(v))
            assert batch[j] == pytest.approx(pair, abs=1e-12)
            assert block[u, v] == pytest.approx(pair, abs=1e-12)

    def test_kiff_still_runs_but_without_guarantee(self, tiny_wikipedia):
        """KIFF accepts Pearson; the optimality guarantee is weakened but
        construction completes and neighbours still share items."""
        from repro import KiffConfig, kiff

        engine = SimilarityEngine(tiny_wikipedia, metric="pearson")
        result = kiff(engine, KiffConfig(k=5))
        assert result.graph.edge_count() > 0
        for u in range(0, tiny_wikipedia.n_users, 37):
            items_u = set(tiny_wikipedia.user_items(u).tolist())
            for v in result.graph.neighbors_of(u):
                items_v = set(tiny_wikipedia.user_items(int(v)).tolist())
                assert items_u & items_v
