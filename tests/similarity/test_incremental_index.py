"""Incremental ProfileIndex updates vs cold rebuilds, across all metrics.

ProfileIndex.update(dataset, dirty_users) must leave the index
indistinguishable from ProfileIndex(dataset) — same norms, sizes,
binarised matrix and (patched) lazy metric caches — because the
streaming parity oracle compares similarities *bit-exactly*.  Pearson's
mean-centring and Adamic-Adar's global item weights are the two caches
with sharp edges, so they get focused coverage on top of the all-metric
sweep.
"""

import numpy as np
import pytest

from repro.datasets import BipartiteDataset
from repro.streaming import ratings_batch
from repro.similarity import ProfileIndex, SimilarityEngine
from repro.similarity.engine import get_metric, metric_names
from tests.conftest import random_dataset


def _mutate_rows(dataset, dirty, seed, n_users=None, n_items=None):
    """A dataset differing from *dataset* exactly in the *dirty* rows."""
    rng = np.random.default_rng(seed)
    n_items = n_items or dataset.n_items
    profiles = [dataset.user_profile(u) for u in range(dataset.n_users)]
    if n_users is not None:
        profiles.extend({} for _ in range(n_users - dataset.n_users))
    for user in dirty:
        profiles[user] = {
            int(rng.integers(0, n_items)): float(rng.integers(1, 6))
            for _ in range(rng.integers(0, 5))
        }
    return BipartiteDataset.from_profiles(
        profiles, n_users=len(profiles), n_items=n_items, name="mutated"
    )


def _all_pairs(n):
    us, vs = np.meshgrid(np.arange(n), np.arange(n))
    us, vs = us.ravel(), vs.ravel()
    keep = us != vs
    return us[keep], vs[keep]


class TestUpdateParity:
    """update() == cold build, for every registered metric."""

    @pytest.mark.parametrize("metric_name", metric_names())
    @pytest.mark.parametrize("seed", range(3))
    def test_scores_bit_identical_after_update(self, metric_name, seed):
        dataset = random_dataset(
            n_users=18, n_items=12, density=0.2, seed=seed, ratings=True
        )
        dirty = [0, 5, 11]
        mutated = _mutate_rows(dataset, dirty, seed + 100)
        incremental = ProfileIndex(dataset)
        metric = get_metric(metric_name)
        us, vs = _all_pairs(dataset.n_users)
        metric.score_batch(incremental, us, vs)  # force the lazy caches
        incremental.update(mutated, dirty)
        cold = ProfileIndex(mutated)
        np.testing.assert_array_equal(
            metric.score_batch(incremental, us, vs),
            metric.score_batch(cold, us, vs),
        )
        for u, v in [(0, 5), (5, 11), (2, 3)]:
            assert metric.score_pair(incremental, u, v) == metric.score_pair(
                cold, u, v
            )

    def test_arrays_match_cold_build(self):
        dataset = random_dataset(
            n_users=20, n_items=10, density=0.25, seed=9, ratings=True
        )
        dirty = [1, 19]
        mutated = _mutate_rows(dataset, dirty, 7)
        index = ProfileIndex(dataset)
        index.update(mutated, dirty)
        cold = ProfileIndex(mutated)
        np.testing.assert_array_equal(index.norms, cold.norms)
        np.testing.assert_array_equal(index.sizes, cold.sizes)
        assert abs(index.matrix - cold.matrix).nnz == 0
        assert abs(index.binary - cold.binary).nnz == 0

    def test_population_growth_lists_new_users_dirty(self):
        dataset = random_dataset(n_users=8, n_items=6, density=0.3, seed=2)
        mutated = _mutate_rows(dataset, [3, 8, 9], 5, n_users=10)
        index = ProfileIndex(dataset)
        index.update(mutated, [3, 8, 9])
        cold = ProfileIndex(mutated)
        assert index.n_users == 10
        np.testing.assert_array_equal(index.norms, cold.norms)

    def test_item_universe_growth(self):
        dataset = random_dataset(n_users=8, n_items=6, density=0.3, seed=2)
        mutated = _mutate_rows(dataset, [0], 5, n_items=9)
        index = ProfileIndex(dataset)
        index.update(mutated, [0])
        assert index.n_items == 9
        np.testing.assert_array_equal(
            index.norms, ProfileIndex(mutated).norms
        )

    def test_counter_charges_dirty_users_only(self):
        dataset = random_dataset(n_users=30, n_items=10, density=0.2, seed=0)
        mutated = _mutate_rows(dataset, [4], 1)
        index = ProfileIndex(dataset)
        assert index.maintenance.index_users_recomputed == 30
        index.update(mutated, [4])
        assert index.maintenance.index_users_recomputed == 31
        assert index.maintenance.index_updates_incremental == 1

    def test_missing_new_users_fall_back_to_full_build(self):
        dataset = random_dataset(n_users=8, n_items=6, density=0.3, seed=2)
        mutated = _mutate_rows(dataset, [0, 8], 5, n_users=9)
        index = ProfileIndex(dataset)
        index.update(mutated, [0])  # new user 8 not declared dirty
        assert index.maintenance.index_builds_full == 2  # ctor + fallback
        np.testing.assert_array_equal(
            index.norms, ProfileIndex(mutated).norms
        )


class TestPearsonCache:
    def test_centered_cache_patched_bit_identically(self):
        dataset = random_dataset(
            n_users=15, n_items=9, density=0.3, seed=4, ratings=True
        )
        dirty = [2, 7]
        mutated = _mutate_rows(dataset, dirty, 11)
        index = ProfileIndex(dataset)
        index.centered  # build the lazy cache before the update
        index.update(mutated, dirty)
        cold_matrix, cold_norms = ProfileIndex(mutated).centered
        patched_matrix, patched_norms = index.centered
        np.testing.assert_array_equal(patched_norms, cold_norms)
        assert abs(patched_matrix - cold_matrix).nnz == 0
        np.testing.assert_array_equal(patched_matrix.data, cold_matrix.data)

    def test_unbuilt_cache_stays_lazy(self):
        dataset = random_dataset(n_users=10, n_items=8, density=0.3, seed=4)
        mutated = _mutate_rows(dataset, [0], 2)
        index = ProfileIndex(dataset)
        index.update(mutated, [0])
        assert index._centered_cache is None  # built on first demand only


class TestAdamicAdarCache:
    def test_patched_when_dirty_covers_raters(self):
        """Dirty-all-raters semantics: the weights patch in place."""
        dataset = random_dataset(
            n_users=12, n_items=8, density=0.3, seed=6, ratings=True
        )
        rater = int(np.flatnonzero(dataset.user_profile_sizes() > 0)[0])
        item = int(dataset.user_items(rater)[0])
        profiles = [dataset.user_profile(u) for u in range(12)]
        profile = dict(profiles[rater])
        profile.pop(item)
        profiles[rater] = profile
        mutated = BipartiteDataset.from_profiles(profiles, n_users=12, n_items=8)
        dirty = sorted(set(dataset.item_users(item).tolist()) | {rater})
        index = ProfileIndex(dataset)
        index.adamic_adar_matrix
        index.update(mutated, dirty)
        assert index._adamic_adar_matrix is not None  # patched, not dropped
        cold = ProfileIndex(mutated)
        np.testing.assert_array_equal(
            index.adamic_adar_matrix.toarray(),
            cold.adamic_adar_matrix.toarray(),
        )
        np.testing.assert_array_equal(
            index._item_degrees,
            np.asarray(cold.binary.sum(axis=0)).ravel().astype(np.int64),
        )

    def test_dropped_when_a_reweighted_item_has_clean_raters(self):
        """Profile-local dirtying can't patch global weights: the cache
        must be invalidated (and lazily rebuilt), never patched wrongly."""
        dataset = random_dataset(
            n_users=12, n_items=8, density=0.3, seed=6, ratings=True
        )
        shared = int(np.flatnonzero(dataset.item_profile_sizes() >= 2)[0])
        rater = int(dataset.item_users(shared)[0])
        profiles = [dataset.user_profile(u) for u in range(12)]
        profile = dict(profiles[rater])
        profile.pop(shared)
        profiles[rater] = profile
        mutated = BipartiteDataset.from_profiles(profiles, n_users=12, n_items=8)
        index = ProfileIndex(dataset)
        index.adamic_adar_matrix
        index.update(mutated, [rater])  # only the rater is dirty
        assert index._adamic_adar_matrix is None
        cold = ProfileIndex(mutated)
        np.testing.assert_array_equal(
            index.adamic_adar_matrix.toarray(),
            cold.adamic_adar_matrix.toarray(),
        )


class _TaggedIndex(ProfileIndex):
    """A subclass with extra derived state (tests the rebind contract)."""

    def __init__(self, dataset, maintenance=None):
        super().__init__(dataset, maintenance=maintenance)
        self.tag = f"tagged:{dataset.name}"

    def update(self, dataset, dirty_users):
        super().update(dataset, dirty_users)
        self.tag = f"tagged:{dataset.name}"
        return self


class _BareCtorIndex(ProfileIndex):
    """A subclass with the minimal (dataset)-only constructor."""

    def __init__(self, dataset):
        super().__init__(dataset)


class TestRebindPreservesIndexClass:
    """SimilarityEngine.rebind must not discard custom index subclasses."""

    def test_full_rebind_reconstructs_subclass(self, rated_dataset):
        engine = SimilarityEngine(
            rated_dataset, index=_TaggedIndex(rated_dataset)
        )
        grown = random_dataset(n_users=7, n_items=6, density=0.4, seed=3)
        engine.rebind(grown)
        assert type(engine.index) is _TaggedIndex
        assert engine.index.tag == f"tagged:{grown.name}"
        assert engine.index.dataset is grown

    def test_full_rebind_tolerates_bare_constructor(self, rated_dataset):
        engine = SimilarityEngine(
            rated_dataset, index=_BareCtorIndex(rated_dataset)
        )
        grown = random_dataset(n_users=7, n_items=6, density=0.4, seed=3)
        engine.rebind(grown)
        assert type(engine.index) is _BareCtorIndex
        assert engine.index.dataset is grown

    def test_incremental_rebind_updates_in_place(self, rated_dataset):
        index = _TaggedIndex(rated_dataset)
        engine = SimilarityEngine(rated_dataset, index=index)
        mutated = _mutate_rows(rated_dataset, [1], 8)
        engine.rebind(mutated, dirty_users=[1])
        assert engine.index is index  # same object, updated in place
        assert engine.index.tag == f"tagged:{mutated.name}"
        np.testing.assert_array_equal(
            engine.index.norms, ProfileIndex(mutated).norms
        )

    def test_streaming_index_preserves_custom_profile_index(self, rated_dataset):
        """End to end: a DynamicKnnIndex built on an engine with a custom
        index keeps it across refreshes."""
        from repro import DynamicKnnIndex, KiffConfig

        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2))
        index.engine.index = _TaggedIndex(rated_dataset)
        index.apply(ratings_batch([0], [3], [4.0]))
        assert type(index.engine.index) is _TaggedIndex
        from repro.streaming import cold_rebuild_graph

        assert index.graph == cold_rebuild_graph(index.dataset, index.config)
