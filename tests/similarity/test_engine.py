"""Unit tests for the instrumented similarity engine."""

import numpy as np
import pytest

from repro.instrumentation import PhaseTimer, SimilarityCounter
from repro.similarity import (
    SimilarityEngine,
    SimilarityMetric,
    get_metric,
    metric_names,
    register_metric,
)


class TestMetricRegistry:
    def test_builtin_names(self):
        assert {"cosine", "jaccard", "adamic_adar", "overlap"} <= set(
            metric_names()
        )

    def test_get_metric_by_name(self):
        assert get_metric("cosine").name == "cosine"

    def test_get_metric_passthrough(self):
        metric = get_metric("jaccard")
        assert get_metric(metric) is metric

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError, match="unknown metric"):
            get_metric("levenshtein")

    def test_register_custom_metric(self, toy_dataset):
        from repro.similarity.overlap import OverlapSimilarity

        class DoubledOverlap(OverlapSimilarity):
            name = "doubled_overlap"

            def score_pair(self, index, u, v):
                return 2.0 * super().score_pair(index, u, v)

            def score_batch(self, index, us, vs):
                return 2.0 * super().score_batch(index, us, vs)

            def score_block(self, index, us):
                return 2.0 * super().score_block(index, us)

        register_metric(DoubledOverlap)
        engine = SimilarityEngine(toy_dataset, metric="doubled_overlap")
        assert engine.pair(0, 1) == 2.0

    def test_register_rejects_default_name(self):
        class Nameless(SimilarityMetric):
            def score_pair(self, index, u, v):  # pragma: no cover
                return 0.0

            def score_batch(self, index, us, vs):  # pragma: no cover
                return np.zeros(len(us))

            def score_block(self, index, us):  # pragma: no cover
                return np.zeros((len(us), 1))

        with pytest.raises(ValueError, match="name"):
            register_metric(Nameless)


class TestCounting:
    def test_pair_counts_one(self, toy_engine):
        toy_engine.pair(0, 1)
        assert toy_engine.counter.evaluations == 1

    def test_batch_counts_length(self, toy_engine):
        toy_engine.batch([0, 0, 1], [1, 2, 2])
        assert toy_engine.counter.evaluations == 3

    def test_empty_batch_counts_zero(self, toy_engine):
        out = toy_engine.batch([], [])
        assert out.size == 0
        assert toy_engine.counter.evaluations == 0

    def test_block_counts_all_but_self(self, toy_engine):
        toy_engine.block(np.array([0, 1]))
        n = toy_engine.n_users
        assert toy_engine.counter.evaluations == 2 * (n - 1)

    def test_block_count_disabled(self, toy_engine):
        toy_engine.block(np.array([0]), count=False)
        assert toy_engine.counter.evaluations == 0

    def test_shared_counter(self, toy_dataset):
        counter = SimilarityCounter()
        a = SimilarityEngine(toy_dataset, counter=counter)
        b = SimilarityEngine(toy_dataset, counter=counter)
        a.pair(0, 1)
        b.pair(0, 1)
        assert counter.evaluations == 2

    def test_scan_rate(self, toy_engine):
        toy_engine.batch([0, 0, 0], [1, 2, 3])
        # 3 evaluations over 4*3/2 = 6 possible pairs.
        assert toy_engine.scan_rate() == pytest.approx(0.5)


class TestBatching:
    def test_chunked_batch_matches_unchunked(self, wiki_engine, tiny_wikipedia):
        rng = np.random.default_rng(0)
        us = rng.integers(0, tiny_wikipedia.n_users, size=500)
        vs = rng.integers(0, tiny_wikipedia.n_users, size=500)
        small = SimilarityEngine(tiny_wikipedia, batch_size=64)
        np.testing.assert_allclose(
            wiki_engine.batch(us, vs), small.batch(us, vs)
        )

    def test_mismatched_lengths_raise(self, toy_engine):
        with pytest.raises(ValueError, match="equal length"):
            toy_engine.batch([0, 1], [1])

    def test_invalid_batch_size_raises(self, toy_dataset):
        with pytest.raises(ValueError, match="batch_size"):
            SimilarityEngine(toy_dataset, batch_size=0)


class TestTiming:
    def test_similarity_time_accumulates(self, toy_engine):
        toy_engine.batch([0] * 100, [1] * 100)
        assert toy_engine.timer.get("similarity") > 0

    def test_external_timer_used(self, toy_dataset):
        timer = PhaseTimer()
        engine = SimilarityEngine(toy_dataset, timer=timer)
        engine.pair(0, 1)
        assert timer.get("similarity") > 0


class TestRebind:
    def test_rebind_swaps_dataset_and_index(self, toy_dataset, rated_dataset):
        engine = SimilarityEngine(toy_dataset)
        old_index = engine.index
        engine.rebind(rated_dataset)
        assert engine.dataset is rated_dataset
        assert engine.index is not old_index
        assert engine.n_users == rated_dataset.n_users

    def test_rebind_keeps_instrumentation(self, toy_dataset, rated_dataset):
        engine = SimilarityEngine(toy_dataset)
        engine.pair(0, 1)
        engine.rebind(rated_dataset)
        engine.pair(0, 1)
        assert engine.counter.evaluations == 2
        assert engine.timer.get("similarity") > 0

    def test_rebind_scores_against_new_data(self, toy_dataset):
        from repro.datasets import BipartiteDataset

        engine = SimilarityEngine(toy_dataset, metric="overlap")
        assert engine.pair(2, 3) == 1.0  # Carl and Dave share 'shopping'
        grown = BipartiteDataset.from_profiles(
            [{0: 1.0, 1: 1.0}, {1: 1.0, 2: 1.0}, {3: 1.0}, {0: 1.0}],
            n_items=4,
        )
        engine.rebind(grown)
        assert engine.pair(2, 3) == 0.0  # Dave switched to the book


class TestChunkBoundary:
    """Dispatch at the us.size == batch_size boundary (exactly one chunk).

    A single-chunk request is scored directly — there is nothing to
    parallelise — even when ``n_jobs > 1``; one extra pair tips it into
    the multi-chunk path.  Results must be identical either way.
    """

    @pytest.mark.parametrize("extra", [0, 1])
    def test_boundary_matches_serial(self, tiny_wikipedia, extra):
        size = 128 + extra
        rng = np.random.default_rng(5)
        us = rng.integers(0, tiny_wikipedia.n_users, size=size)
        vs = rng.integers(0, tiny_wikipedia.n_users, size=size)
        serial = SimilarityEngine(tiny_wikipedia, batch_size=128, n_jobs=1)
        parallel = SimilarityEngine(tiny_wikipedia, batch_size=128, n_jobs=4)
        np.testing.assert_array_equal(
            serial.batch(us, vs), parallel.batch(us, vs)
        )
        assert serial.counter.evaluations == size
        assert parallel.counter.evaluations == size

    def test_single_chunk_never_uses_pool(self, tiny_wikipedia, monkeypatch):
        engine = SimilarityEngine(tiny_wikipedia, batch_size=16, n_jobs=4)
        monkeypatch.setattr(
            engine,
            "_batch_parallel",
            lambda us, vs: (_ for _ in ()).throw(
                AssertionError("pool used for a single chunk")
            ),
        )
        out = engine.batch(np.arange(16), np.arange(16) + 1)
        assert out.size == 16

    def test_two_chunks_use_pool(self, tiny_wikipedia):
        engine = SimilarityEngine(tiny_wikipedia, batch_size=16, n_jobs=4)
        calls = []
        original = engine._batch_parallel
        engine._batch_parallel = lambda us, vs: calls.append(us.size) or original(us, vs)
        engine.batch(np.arange(17), np.arange(17) + 1)
        assert calls == [17]


class TestParallelBatch:
    def test_parallel_matches_serial(self, tiny_wikipedia):
        import numpy as np

        rng = np.random.default_rng(1)
        us = rng.integers(0, tiny_wikipedia.n_users, size=3000)
        vs = rng.integers(0, tiny_wikipedia.n_users, size=3000)
        serial = SimilarityEngine(tiny_wikipedia, batch_size=256, n_jobs=1)
        parallel = SimilarityEngine(tiny_wikipedia, batch_size=256, n_jobs=4)
        np.testing.assert_array_equal(
            serial.batch(us, vs), parallel.batch(us, vs)
        )
        assert serial.counter.evaluations == parallel.counter.evaluations

    def test_parallel_small_batch_uses_fast_path(self, tiny_wikipedia):
        engine = SimilarityEngine(tiny_wikipedia, n_jobs=4)
        out = engine.batch([0, 1], [1, 2])
        assert out.size == 2

    def test_pool_is_reused_across_batches(self, tiny_wikipedia):
        """One lazily created pool serves every multi-chunk batch."""
        engine = SimilarityEngine(tiny_wikipedia, batch_size=16, n_jobs=2)
        assert engine._pool is None  # lazy: nothing until a parallel batch
        engine.batch(np.arange(17), np.arange(17) + 1)
        first = engine._pool
        assert first is not None
        engine.batch(np.arange(17), np.arange(17) + 1)
        assert engine._pool is first

    def test_close_shuts_pool_down_deterministically(self, tiny_wikipedia):
        engine = SimilarityEngine(tiny_wikipedia, batch_size=16, n_jobs=2)
        engine.close()  # idempotent before any pool exists
        expected = engine.batch(np.arange(17), np.arange(17) + 1)
        pool = engine._pool
        engine.close()
        assert engine._pool is None
        assert pool._shutdown  # the executor is really down
        # The engine stays usable: the pool is re-created on demand.
        np.testing.assert_array_equal(
            engine.batch(np.arange(17), np.arange(17) + 1), expected
        )
        engine.close()

    def test_invalid_n_jobs_raises(self, tiny_wikipedia):
        import pytest as _pytest

        with _pytest.raises(ValueError, match="n_jobs"):
            SimilarityEngine(tiny_wikipedia, n_jobs=0)

    def test_kiff_with_parallel_engine(self, tiny_wikipedia):
        from repro import KiffConfig, kiff

        serial_result = kiff(
            SimilarityEngine(tiny_wikipedia, batch_size=128, n_jobs=1),
            KiffConfig(k=8),
        )
        parallel_result = kiff(
            SimilarityEngine(tiny_wikipedia, batch_size=128, n_jobs=3),
            KiffConfig(k=8),
        )
        assert serial_result.graph == parallel_result.graph
