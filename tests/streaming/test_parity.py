"""Differential parity: streaming maintenance vs cold KIFF rebuilds.

The contract of :class:`DynamicKnnIndex` is exactness: after any
interleaving of insert/remove events (and a refresh), its graph must be
*identical* — neighbour ids and similarities — to a cold converged
``kiff()`` rebuild on the final dataset.  The randomized suite below
drives 50+ distinct event streams across two metrics and both pivot
settings; the focused tests pin each event kind and policy knob.
"""

import numpy as np
import pytest

from repro import DynamicKnnIndex, KiffConfig
from repro.streaming import (
    AddRating,
    AddUser,
    RemoveUser,
    cold_rebuild_graph,
    ratings_batch,
)
from tests.conftest import random_dataset


def cold_rebuild(index, metric="cosine"):
    """The converged KIFF graph on the index's current dataset."""
    return cold_rebuild_graph(index.dataset, index.config, metric=metric)


def drive_random_stream(index, seed, n_events=30, max_item=20):
    """A random interleaving of rating/user events with random refreshes."""
    rng = np.random.default_rng(seed)
    for _ in range(n_events):
        op = rng.integers(0, 10)
        n = index.n_users
        if op < 6:  # rating lands (insert or overwrite; 0 deletes)
            event = AddRating(
                int(rng.integers(0, n)),
                int(rng.integers(0, max_item)),
                float(rng.integers(0, 6)),
            )
        elif op < 8:  # a user joins
            size = int(rng.integers(0, 4))
            event = AddUser(
                tuple(rng.choice(max_item, size=size, replace=False).tolist()),
                tuple(rng.integers(1, 6, size=size).astype(float).tolist()),
            )
        else:  # a user leaves
            event = RemoveUser(int(rng.integers(0, n)))
        index.apply(event)
        if rng.random() < 0.3:
            index.refresh()
    index.refresh()


class TestRandomizedStreams:
    """52 randomized event streams x exact equality (acceptance bar: 50)."""

    @pytest.mark.parametrize("seed", range(13))
    @pytest.mark.parametrize("pivot", [True, False])
    @pytest.mark.parametrize("metric", ["cosine", "jaccard"])
    def test_stream_equals_cold_rebuild(self, metric, pivot, seed):
        dataset = random_dataset(
            n_users=18, n_items=14, density=0.15, seed=seed, ratings=True
        )
        index = DynamicKnnIndex(
            dataset,
            KiffConfig(k=4, pivot=pivot),
            metric=metric,
            auto_refresh=False,
        )
        drive_random_stream(index, seed)
        assert index.graph == cold_rebuild(index, metric)


class TestEventKinds:
    def test_add_rating_parity(self, toy_dataset):
        index = DynamicKnnIndex(toy_dataset, KiffConfig(k=3))
        index.apply(ratings_batch([2], [0], [1.0]))  # Carl rates the book
        assert index.graph == cold_rebuild(index)
        # Carl now shares the book with Alice.
        assert 0 in index.graph.neighbors_of(2).tolist()

    def test_overwrite_and_delete_rating_parity(self, rated_dataset):
        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=3))
        index.apply(ratings_batch([0], [0], [2.0]))  # overwrite
        assert index.graph == cold_rebuild(index)
        index.apply(ratings_batch([0], [0], [0.0]))  # delete the edge
        assert index.graph == cold_rebuild(index)
        assert index.dataset.user_items(0).tolist() == [1, 2]

    def test_add_user_parity_and_growth(self, toy_dataset):
        index = DynamicKnnIndex(toy_dataset, KiffConfig(k=3))
        newcomer = index.apply(AddUser([3], [1.0])).new_users[0]  # shares 'shopping' with 2, 3
        assert newcomer == 4
        assert index.n_users == 5
        assert index.graph.n_users == 5
        assert index.graph == cold_rebuild(index)
        assert set(index.graph.neighbors_of(newcomer).tolist()) == {2, 3}

    def test_burst_of_joins_between_refreshes(self, toy_dataset):
        """Many joins in deferred mode (exercises geometric row growth)."""
        index = DynamicKnnIndex(toy_dataset, KiffConfig(k=3), auto_refresh=False)
        for i in range(12):
            index.apply(AddUser([i % 4], [1.0]))
        index.refresh()
        assert index.n_users == 16
        assert index.graph.n_users == 16
        assert index.graph == cold_rebuild(index)

    def test_rejected_batch_applies_nothing(self, toy_dataset):
        """add_ratings validates the whole batch first: a bad event must
        not leave earlier events applied but unrefreshed."""
        from repro.datasets import DatasetError

        index = DynamicKnnIndex(toy_dataset, KiffConfig(k=3))
        before = index.dataset
        for bad_batch in (
            ([0, 99], [1, 1], [3.0, 3.0]),  # out-of-range user
            ([0, 1], [1, -2], [3.0, 3.0]),  # negative item
            ([0, 1], [1, 1], [3.0, float("nan")]),  # non-finite rating
        ):
            with pytest.raises(DatasetError):
                index.apply(ratings_batch(*bad_batch))
            assert index.pending_events == 0
            assert index.dirty_users == frozenset()
        assert index.dataset == before
        assert index.graph == cold_rebuild(index)

    def test_rejected_add_user_keeps_index_consistent(self, toy_dataset):
        """A rejected profile must not desynchronize builder and graph."""
        from repro.datasets import DatasetError

        index = DynamicKnnIndex(toy_dataset, KiffConfig(k=3))
        with pytest.raises(DatasetError):
            index.apply(AddUser([0, 1], [1.0]))
        assert index.n_users == 4
        newcomer = index.apply(AddUser([0], [1.0])).new_users[0]
        assert newcomer == 4
        assert index.graph == cold_rebuild(index)

    def test_add_user_with_new_items_grows_item_space(self, toy_dataset):
        index = DynamicKnnIndex(toy_dataset, KiffConfig(k=3))
        index.apply(AddUser([99], [1.0]))
        assert index.dataset.n_items == 100
        assert index.graph == cold_rebuild(index)

    def test_remove_user_parity(self, toy_dataset):
        index = DynamicKnnIndex(toy_dataset, KiffConfig(k=3))
        index.apply(RemoveUser(3))  # Dave leaves; Carl loses his only neighbour
        assert index.graph == cold_rebuild(index)
        assert index.graph.neighbors_of(2).size == 0
        assert index.graph.degree()[3] == 0

    def test_remove_then_rejoin_parity(self, toy_dataset):
        index = DynamicKnnIndex(toy_dataset, KiffConfig(k=3))
        index.apply(RemoveUser(1))
        index.apply(ratings_batch([1], [1], [1.0]))  # Bob re-rates coffee
        assert index.graph == cold_rebuild(index)
        assert 0 in index.graph.neighbors_of(1).tolist()


class TestPolicyKnobs:
    @pytest.mark.parametrize("min_rating", [None, 3.0])
    def test_min_rating_parity(self, min_rating):
        dataset = random_dataset(
            n_users=25, n_items=18, density=0.2, seed=5, ratings=True
        )
        index = DynamicKnnIndex(dataset, KiffConfig(k=4, min_rating=min_rating))
        rng = np.random.default_rng(0)
        for _ in range(15):
            index.apply(
                AddRating(
                    int(rng.integers(0, index.n_users)),
                    int(rng.integers(0, 20)),
                    float(rng.integers(1, 6)),
                )
            )
        assert index.graph == cold_rebuild(index)

    def test_auto_refresh_keeps_graph_exact_each_event(self, rated_dataset):
        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2))
        for user, item, rating in [(0, 3, 4.0), (4, 0, 2.0), (1, 4, 5.0)]:
            index.apply(ratings_batch([user], [item], [rating]))
            assert index.pending_events == 0
            assert index.graph == cold_rebuild(index)

    def test_deferred_refresh_restores_parity(self, rated_dataset):
        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2), auto_refresh=False)
        index.apply(ratings_batch([0, 4], [3, 0], [4.0, 2.0]))
        assert index.pending_events == 2
        assert index.dirty_users == frozenset({0, 4})
        index.refresh()
        assert index.pending_events == 0
        assert index.graph == cold_rebuild(index)

    def test_rebuild_recovers_from_any_state(self, rated_dataset):
        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2), auto_refresh=False)
        index.apply(ratings_batch([0, 1, 2], [4, 4, 4], [1.0, 2.0, 3.0]))
        result = index.rebuild()
        assert index.pending_events == 0
        assert index.graph == result.graph
        assert index.graph == cold_rebuild(index)

    @pytest.mark.parametrize("metric", ["cosine", "jaccard", "overlap"])
    def test_metric_plumbing(self, metric, rated_dataset):
        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2), metric=metric)
        index.apply(ratings_batch([2], [0], [3.0]))
        assert index.graph == cold_rebuild(index, metric)

    @pytest.mark.parametrize("seed", range(4))
    def test_non_profile_local_metric_parity(self, seed):
        """Adamic-Adar weights shift with global item popularity: a
        membership change must dirty every rater of the item, or clean
        pairs sharing it would keep stale sims."""
        dataset = random_dataset(
            n_users=20, n_items=14, density=0.15, seed=seed, ratings=True
        )
        index = DynamicKnnIndex(
            dataset, KiffConfig(k=4), metric="adamic_adar", auto_refresh=False
        )
        drive_random_stream(index, seed, n_events=20)
        assert index.graph == cold_rebuild(index, "adamic_adar")

    def test_deferred_build_first_refresh_constructs_graph(self, rated_dataset):
        """build=False starts empty; the first refresh() must produce the
        full converged graph, not just rows touched by events."""
        index = DynamicKnnIndex(
            rated_dataset, KiffConfig(k=2), auto_refresh=False, build=False
        )
        assert index.graph.edge_count() == 0
        index.apply(ratings_batch([0], [3], [4.0]))
        index.refresh()
        assert index.graph == cold_rebuild(index)

    def test_deferred_build_refresh_without_events(self, rated_dataset):
        index = DynamicKnnIndex(
            rated_dataset, KiffConfig(k=2), auto_refresh=False, build=False
        )
        index.refresh()
        assert index.graph == cold_rebuild(index)


class TestRefreshRobustness:
    def test_failed_refresh_is_retryable(self, rated_dataset, monkeypatch):
        """A mid-pass evaluation failure must not strand cleared rows:
        the next refresh rebuilds every row the failed pass touched."""
        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2), auto_refresh=False)
        index.apply(ratings_batch([0], [3], [4.0]))
        original_batch = index.engine.batch

        def exploding_batch(us, vs):
            raise RuntimeError("metric blew up")

        monkeypatch.setattr(index.engine, "batch", exploding_batch)
        with pytest.raises(RuntimeError, match="blew up"):
            index.refresh()
        monkeypatch.setattr(index.engine, "batch", original_batch)
        index.refresh()
        assert index.graph == cold_rebuild(index)

    def test_refresh_preserves_row_capacity(self, toy_dataset):
        """merge results are written back through views, so the slack
        from geometric growth survives refreshes between joins."""
        index = DynamicKnnIndex(toy_dataset, KiffConfig(k=3), auto_refresh=False)
        index.apply(AddUser([0], [1.0]))  # grows capacity to 2 * 4 = 8 rows
        index.refresh()
        assert index._neighbors.shape[0] == 8
        assert index.n_users == 5
        index.apply(AddUser([1], [1.0]))  # fits in slack: no reallocation
        index.refresh()
        assert index._neighbors.shape[0] == 8
        assert index.graph == cold_rebuild(index)


class TestRefreshAccounting:
    def test_refresh_stats_recorded(self, rated_dataset):
        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2), auto_refresh=False)
        index.apply(ratings_batch([0], [3], [4.0]))
        stats = index.refresh()
        assert stats.events == 1
        assert stats.dirty_users == 1
        assert stats.affected_users >= stats.dirty_users
        assert stats.evaluations > 0
        assert index.refresh_log[-1] == stats

    def test_duplicate_events_are_free(self, rated_dataset):
        """At-least-once delivery: redelivering an identical rating (or a
        delete of an absent edge) must not dirty anyone or spend evals."""
        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2))
        before = index.engine.counter.evaluations
        index.apply(ratings_batch([0], [0], [5.0]))  # identical to the stored rating
        index.apply(ratings_batch([0], [4], [0.0]))  # delete of an absent edge
        assert index.engine.counter.evaluations == before
        assert index.graph == cold_rebuild(index)

    def test_refresh_without_events_is_free(self, rated_dataset):
        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2))
        before = index.engine.counter.evaluations
        stats = index.refresh()
        assert stats.evaluations == 0
        assert index.engine.counter.evaluations == before

    def test_localized_refresh_cheaper_than_rebuild(self):
        dataset = random_dataset(
            n_users=80, n_items=60, density=0.05, seed=9, ratings=True
        )
        index = DynamicKnnIndex(dataset, KiffConfig(k=5), auto_refresh=False)
        index.apply(ratings_batch([0], [0], [5.0]))
        stats = index.refresh()
        assert 0 < stats.evaluations < index.initial_evaluations

    def test_maintenance_evaluations_accumulate(self, rated_dataset):
        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2))
        assert index.maintenance_evaluations == 0
        index.apply(ratings_batch([0], [3], [4.0]))
        assert index.maintenance_evaluations > 0
