"""Differential crash-recovery parity: checkpoint + WAL-tail replay.

The durability contract extends the streaming parity invariant across
process death: kill the stream at a random event, recover from the
latest checkpoint plus the write-ahead log tail, and the refreshed graph
must be **bit-identical** — neighbour ids and similarities — to the
uninterrupted ``DynamicKnnIndex`` run at the same point.  The randomized
suite below drives 20+ distinct kill points across two metrics
(acceptance bar: >= 20 streams, >= 2 metrics); the subprocess test does
it with a real SIGKILL through ``examples/streaming_updates.py``.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import DynamicKnnIndex, KiffConfig
from repro.graph import load_graph
from repro.persistence import WriteAheadLog, read_wal
from repro.streaming import (
    AddRating,
    AddUser,
    Batch,
    RemoveRating,
    RemoveUser,
)
from tests.conftest import random_dataset

REPO_ROOT = Path(__file__).resolve().parents[2]


def random_events(seed, n_users, n_events=24, max_item=18):
    """A pre-generated random event stream (population simulated, so the
    same list can drive several independent index runs)."""
    rng = np.random.default_rng(seed)
    events = []
    n = n_users
    for _ in range(n_events):
        op = int(rng.integers(0, 12))
        if op < 5:
            events.append(
                AddRating(
                    int(rng.integers(0, n)),
                    int(rng.integers(0, max_item)),
                    float(rng.integers(0, 6)),
                )
            )
        elif op < 6:
            events.append(
                RemoveRating(
                    int(rng.integers(0, n)), int(rng.integers(0, max_item))
                )
            )
        elif op < 8:
            size = int(rng.integers(0, 4))
            events.append(
                AddUser(
                    tuple(rng.choice(max_item, size=size, replace=False).tolist()),
                    tuple(rng.integers(1, 6, size=size).astype(float).tolist()),
                )
            )
            n += 1
        elif op < 9:
            events.append(
                Batch(
                    tuple(
                        AddRating(
                            int(rng.integers(0, n)),
                            int(rng.integers(0, max_item)),
                            float(rng.integers(1, 6)),
                        )
                        for _ in range(int(rng.integers(1, 4)))
                    )
                )
            )
        else:
            events.append(RemoveUser(int(rng.integers(0, n))))
    return events


class TestKillAtRandomEvent:
    """20 randomized streams x 2 metrics: recovery is bit-identical."""

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("metric", ["cosine", "jaccard"])
    def test_recovery_equals_uninterrupted_run(self, tmp_path, metric, seed):
        dataset = random_dataset(
            n_users=16, n_items=14, density=0.15, seed=seed, ratings=True
        )
        events = random_events(seed, n_users=16)
        rng = np.random.default_rng(seed + 4096)
        kill_at = int(rng.integers(1, len(events)))
        checkpoint_every = int(rng.integers(2, 8))
        config = KiffConfig(k=4)

        # The run that dies: WAL + periodic checkpoints, then the
        # process state is abandoned at a random event.
        state = tmp_path / "state"
        live = DynamicKnnIndex(
            dataset,
            config,
            metric=metric,
            auto_refresh=False,
            wal=WriteAheadLog(state / "wal.jsonl", fsync_every=4),
        )
        live.checkpoint(state)
        for done, event in enumerate(events[:kill_at], start=1):
            live.apply(event)
            if done % checkpoint_every == 0:
                if rng.random() < 0.5:  # checkpoints mid-dirty and clean
                    live.refresh()
                live.checkpoint(state)
        del live  # the crash: in-memory state is gone

        # The uninterrupted reference at the same point.
        reference = DynamicKnnIndex(
            dataset, config, metric=metric, auto_refresh=False
        )
        reference.apply(events[:kill_at])
        reference.refresh()

        restored = DynamicKnnIndex.restore(state)
        assert restored.graph == reference.graph  # ids AND sims, exact
        assert restored.dataset == reference.dataset
        assert restored.last_seq == reference.last_seq

        # The recovered index keeps journaling: finish the stream and it
        # still matches a never-crashed run end to end.
        restored.apply(events[kill_at:])
        restored.refresh()
        full = DynamicKnnIndex(
            dataset, config, metric=metric, auto_refresh=False
        )
        full.apply(events)
        full.refresh()
        assert restored.graph == full.graph
        assert restored.dataset == full.dataset
        # ... and a second crash-recovery of the continued WAL agrees.
        rerestored = DynamicKnnIndex.restore(state)
        assert rerestored.graph == full.graph


class TestRecoveryDetails:
    def test_auto_refresh_stream_recovers(self, tmp_path):
        """auto_refresh=True streams checkpoint a clean graph; recovery
        replays the tail and matches the per-event-refreshed run."""
        dataset = random_dataset(n_users=14, n_items=12, seed=2, ratings=True)
        state = tmp_path / "state"
        live = DynamicKnnIndex(
            dataset, KiffConfig(k=3), wal=WriteAheadLog(state / "wal.jsonl")
        )
        live.checkpoint(state)
        live.apply([AddRating(0, 5, 4.0), AddUser((1, 5), (3.0, 2.0))])
        restored = DynamicKnnIndex.restore(state)
        assert restored.restore_info.replayed_events == 2
        assert restored.graph == live.graph
        assert restored.auto_refresh is True

    def test_restored_wal_continues_sequence(self, tmp_path):
        dataset = random_dataset(n_users=10, n_items=8, seed=5, ratings=True)
        state = tmp_path / "state"
        live = DynamicKnnIndex(
            dataset, KiffConfig(k=3), wal=WriteAheadLog(state / "wal.jsonl")
        )
        live.checkpoint(state)
        live.apply(AddRating(0, 2, 3.0))
        restored = DynamicKnnIndex.restore(state)
        result = restored.apply(AddRating(1, 2, 2.0))
        assert result.last_seq == 2
        assert [seq for seq, _ in read_wal(state / "wal.jsonl")] == [1, 2]

    def test_corrupt_latest_checkpoint_falls_back_to_older(self, tmp_path):
        """A truncated newest checkpoint (power loss after rename) must
        not brick recovery while an older complete one + the WAL-tail
        replay can reconstruct the same state."""
        dataset = random_dataset(n_users=12, n_items=10, seed=7, ratings=True)
        state = tmp_path / "state"
        live = DynamicKnnIndex(
            dataset, KiffConfig(k=3), wal=WriteAheadLog(state / "wal.jsonl")
        )
        live.checkpoint(state)
        live.apply(AddRating(0, 4, 3.0))
        newest = live.checkpoint(state)
        newest.write_bytes(b"")  # the lost-bytes torn archive
        restored = DynamicKnnIndex.restore(state)
        assert restored.restore_info.checkpoint != newest
        assert restored.restore_info.replayed_events == 1
        assert restored.graph == live.graph

    def test_fallback_refuses_to_skip_unjournaled_events(self, tmp_path):
        """If the only checkpoint covering a journaling gap is the
        corrupt one, restore must fail loudly rather than silently
        dropping the gap's events."""
        from repro.persistence import CheckpointError

        dataset = random_dataset(n_users=12, n_items=10, seed=12, ratings=True)
        state = tmp_path / "state"
        index = DynamicKnnIndex(dataset, KiffConfig(k=3))
        index.checkpoint(state)  # checkpoint-0, before any journaling
        index.apply([AddRating(0, 4, 3.0), AddRating(1, 4, 2.0)])  # not logged
        index.checkpoint(state)  # checkpoint-2 covers the unlogged events
        index.attach_wal(WriteAheadLog(state / "wal.jsonl"))  # starts at 2
        index.apply(AddRating(2, 4, 5.0))  # journaled as seq 3
        # checkpoint-2 — the only bridge over the unlogged events — dies:
        (state / "checkpoint-000000000002.npz").write_bytes(b"")
        with pytest.raises(CheckpointError, match="not recoverable"):
            DynamicKnnIndex.restore(state)

    def test_all_checkpoints_corrupt_raises_checkpoint_error(self, tmp_path):
        from repro.persistence import CheckpointError

        dataset = random_dataset(n_users=10, n_items=8, seed=8, ratings=True)
        state = tmp_path / "state"
        index = DynamicKnnIndex(dataset, KiffConfig(k=3))
        index.checkpoint(state).write_bytes(b"not an archive")
        with pytest.raises(CheckpointError, match="no readable checkpoint"):
            DynamicKnnIndex.restore(state)

    def test_lost_unsynced_tail_behind_durable_checkpoint(self, tmp_path):
        """fsync batching can lose WAL lines that a durable checkpoint
        already covers; recovery must proceed from the checkpoint and
        rotate the superseded log instead of aborting."""
        dataset = random_dataset(n_users=12, n_items=10, seed=9, ratings=True)
        state = tmp_path / "state"
        live = DynamicKnnIndex(
            dataset, KiffConfig(k=3), wal=WriteAheadLog(state / "wal.jsonl")
        )
        live.checkpoint(state)
        live.apply([AddRating(0, 4, 3.0), AddRating(1, 4, 2.0)])
        live.checkpoint(state)  # durable through seq 2
        # Simulate the OS losing the unsynced tail: drop the last line.
        wal_file = state / "wal.jsonl"
        lines = wal_file.read_bytes().splitlines(keepends=True)
        wal_file.write_bytes(b"".join(lines[:-1]))
        restored = DynamicKnnIndex.restore(state)
        assert restored.last_seq == 2  # the checkpoint's sequence
        assert restored.graph == live.graph
        assert list(state.glob("wal.jsonl.superseded-*"))  # rotated aside
        # Journaling restarts cleanly at the checkpoint's sequence.
        assert restored.apply(AddRating(2, 4, 5.0)).last_seq == 3
        assert DynamicKnnIndex.restore(state).graph == restored.graph

    def test_failed_journal_append_rolls_back_cleanly(self, tmp_path):
        """Disk-full on the Kth append of a batch: nothing is journaled
        or absorbed, and the retry neither double-journals nor diverges
        recovery from the live run."""
        dataset = random_dataset(n_users=12, n_items=10, seed=10, ratings=True)
        state = tmp_path / "state"
        live = DynamicKnnIndex(
            dataset, KiffConfig(k=3), wal=WriteAheadLog(state / "wal.jsonl")
        )
        live.checkpoint(state)
        batch = Batch((AddRating(0, 4, 3.0), AddUser((2,), (4.0,))))
        real_append = live.wal.append
        calls = []

        def failing_append(event):
            if len(calls) == 1:
                raise OSError("no space left on device")
            calls.append(event)
            return real_append(event)

        live.wal.append = failing_append
        with pytest.raises(OSError, match="no space"):
            live.apply(batch)
        live.wal.append = real_append
        assert live.last_seq == 0
        assert live.pending_events == 0
        assert list(read_wal(state / "wal.jsonl")) == []
        result = live.apply(batch)  # the retry, after space was freed
        assert result.last_seq == 2
        assert result.new_users == (12,)
        restored = DynamicKnnIndex.restore(state)
        assert restored.graph == live.graph
        assert restored.n_users == live.n_users == 13

    def test_torn_wal_tail_is_survivable(self, tmp_path):
        """A crash mid-append loses at most the torn record, never the
        ability to recover."""
        dataset = random_dataset(n_users=10, n_items=8, seed=6, ratings=True)
        state = tmp_path / "state"
        live = DynamicKnnIndex(
            dataset, KiffConfig(k=3), wal=WriteAheadLog(state / "wal.jsonl")
        )
        live.checkpoint(state)
        live.apply(AddRating(0, 2, 3.0))
        with (state / "wal.jsonl").open("ab") as handle:
            handle.write(b'{"seq": 2, "type": "add_r')  # died mid-write
        reference = DynamicKnnIndex(dataset, KiffConfig(k=3))
        reference.apply(AddRating(0, 2, 3.0))
        restored = DynamicKnnIndex.restore(state)
        assert restored.last_seq == 1
        assert restored.graph == reference.graph


@pytest.mark.skipif(sys.platform == "win32", reason="needs SIGKILL")
class TestSigkillSmoke:
    """End-to-end crash recovery through the example script."""

    def run_example(self, state_dir, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        return subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "examples" / "streaming_updates.py"),
                "--state-dir",
                str(state_dir),
                "--checkpoint-every",
                "10",
                "--seed",
                "11",
                *extra,
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_sigkill_mid_stream_recovers_bit_identically(self, tmp_path):
        killed_dir = tmp_path / "killed"
        proc = self.run_example(
            killed_dir, "--events", "60", "--kill-after", "37"
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        # Uninterrupted reference: same seed, stopped cleanly at event 37.
        ref_dir = tmp_path / "reference"
        proc = self.run_example(ref_dir, "--events", "37")
        assert proc.returncode == 0, proc.stderr
        restored = DynamicKnnIndex.restore(killed_dir)
        assert restored.restore_info.replayed_events > 0  # WAL tail used
        assert restored.graph == load_graph(ref_dir / "final-graph.npz")
