"""Differential parity and recovery for the shard-parallel index.

The contract of :class:`ShardedKnnIndex` is that sharding is invisible
in the result: after any event interleaving, its graph is **bit-identical**
— neighbour ids and similarities — to the sequential
:class:`DynamicKnnIndex` driven by the same events (and therefore to a
cold converged rebuild).  The randomized suite below replays the
52-stream corpus (13 seeds x 2 metrics x 2 pivot settings) at 1, 2 and
4 shards; focused tests pin the shard-state ownership, the outbox
protocol, the thread executor's determinism, and partitioned
crash-recovery landing bit-identical to the uninterrupted sharded run.
"""

import numpy as np
import pytest

from repro import DynamicKnnIndex, KiffConfig, ShardedKnnIndex
from repro.persistence import (
    PartitionedWriteAheadLog,
    PersistenceError,
    read_partitioned_wal,
)
from repro.streaming import AddRating, AddUser, RemoveUser, ratings_batch
from repro.streaming.sharding import shard_of
from tests.conftest import random_dataset
from tests.streaming.test_recovery import random_events


def sharded_events(seed, n_users, n_events=24, max_item=18):
    """A pre-generated random stream plus seeded refresh points."""
    events = random_events(seed, n_users, n_events=n_events, max_item=max_item)
    rng = np.random.default_rng(seed + 77)
    refresh_after = rng.random(len(events)) < 0.3
    return events, refresh_after


def drive(index, events, refresh_after):
    """Replay a pre-generated stream with its refresh schedule."""
    for event, refresh in zip(events, refresh_after):
        index.apply(event)
        if refresh:
            index.refresh()
    index.refresh()
    return index


class TestShardedParity:
    """52 randomized streams x 1/2/4 shards x exact equality."""

    @pytest.mark.parametrize("seed", range(13))
    @pytest.mark.parametrize("pivot", [True, False])
    @pytest.mark.parametrize("metric", ["cosine", "jaccard"])
    def test_sharded_equals_sequential(self, metric, pivot, seed):
        dataset = random_dataset(
            n_users=18, n_items=14, density=0.15, seed=seed, ratings=True
        )
        events, refresh_after = sharded_events(seed, 18)
        config = KiffConfig(k=4, pivot=pivot)
        reference = drive(
            DynamicKnnIndex(
                dataset, config, metric=metric, auto_refresh=False
            ),
            events,
            refresh_after,
        )
        for n_shards in (1, 2, 4):
            sharded = drive(
                ShardedKnnIndex(
                    dataset,
                    config,
                    metric=metric,
                    auto_refresh=False,
                    n_shards=n_shards,
                    executor="serial",
                ),
                events,
                refresh_after,
            )
            assert sharded.graph == reference.graph  # ids AND sims, exact
            assert sharded.dataset == reference.dataset
            assert sharded.last_seq == reference.last_seq

    @pytest.mark.parametrize("seed", range(3))
    def test_thread_executor_is_bit_identical(self, seed):
        """The thread pool must not change results vs serial shard order."""
        dataset = random_dataset(
            n_users=20, n_items=15, density=0.15, seed=seed, ratings=True
        )
        events, refresh_after = sharded_events(seed, 20)
        config = KiffConfig(k=4)
        serial = drive(
            ShardedKnnIndex(
                dataset, config, auto_refresh=False, n_shards=4,
                executor="serial",
            ),
            events,
            refresh_after,
        )
        threaded = ShardedKnnIndex(
            dataset, config, auto_refresh=False, n_shards=4,
            executor="threads",
        )
        drive(threaded, events, refresh_after)
        threaded.close()
        assert threaded.graph == serial.graph

    def test_non_profile_local_metric_parity(self):
        """Adamic-Adar's global item weights must stay exact under
        sharded dirtying too."""
        dataset = random_dataset(
            n_users=20, n_items=14, density=0.15, seed=5, ratings=True
        )
        events, refresh_after = sharded_events(5, 20, n_events=20)
        reference = drive(
            DynamicKnnIndex(
                dataset, KiffConfig(k=4), metric="adamic_adar",
                auto_refresh=False,
            ),
            events,
            refresh_after,
        )
        sharded = drive(
            ShardedKnnIndex(
                dataset, KiffConfig(k=4), metric="adamic_adar",
                auto_refresh=False, n_shards=3, executor="serial",
            ),
            events,
            refresh_after,
        )
        assert sharded.graph == reference.graph

    def test_auto_refresh_stays_exact(self, rated_dataset):
        from repro.streaming import cold_rebuild_graph

        index = ShardedKnnIndex(
            rated_dataset, KiffConfig(k=2), n_shards=2, executor="serial"
        )
        for user, item, rating in [(0, 3, 4.0), (4, 0, 2.0), (1, 4, 5.0)]:
            index.apply(ratings_batch([user], [item], [rating]))
            assert index.pending_events == 0
            assert index.graph == cold_rebuild_graph(
                index.dataset, index.config
            )

    def test_failed_refresh_is_retryable(self, rated_dataset, monkeypatch):
        """A worker failure mid-pass must leave cleared rows rebuildable."""
        from repro.streaming import cold_rebuild_graph

        index = ShardedKnnIndex(
            rated_dataset, KiffConfig(k=2), auto_refresh=False, n_shards=2,
            executor="serial",
        )
        index.apply(ratings_batch([0], [3], [4.0]))
        original = index._score_pairs

        def exploding(us, vs):
            raise RuntimeError("metric blew up")

        monkeypatch.setattr(index, "_score_pairs", exploding)
        with pytest.raises(RuntimeError, match="blew up"):
            index.refresh()
        monkeypatch.setattr(index, "_score_pairs", original)
        index.refresh()
        assert index.graph == cold_rebuild_graph(index.dataset, index.config)


class TestShardState:
    def test_invalid_construction(self, rated_dataset):
        with pytest.raises(ValueError, match="n_shards"):
            ShardedKnnIndex(rated_dataset, KiffConfig(k=2), n_shards=0)
        with pytest.raises(ValueError, match="executor"):
            ShardedKnnIndex(
                rated_dataset, KiffConfig(k=2), executor="fibers"
            )

    def test_dirty_set_is_owned_by_shard(self, rated_dataset):
        index = ShardedKnnIndex(
            rated_dataset, KiffConfig(k=2), auto_refresh=False, n_shards=2,
            executor="serial",
        )
        index.apply(ratings_batch([0, 1, 2], [4, 4, 4], [1.0, 2.0, 3.0]))
        assert index.dirty_users == frozenset({0, 1, 2})
        for shard in index._shards:
            assert all(
                shard_of(user, 2) == shard.shard_id for user in shard.dirty
            )
        index.refresh()
        assert len(index.dirty_users) == 0

    def test_reverse_index_rows_are_owned_by_shard(self, rated_dataset):
        index = ShardedKnnIndex(
            rated_dataset, KiffConfig(k=2), n_shards=2, executor="serial"
        )
        for shard in index._shards:
            for rows in shard.reverse._referrers.values():
                assert all(
                    shard_of(row, 2) == shard.shard_id for row in rows
                )
        # The routed union equals a flat rebuild over the same rows.
        from repro.graph import ReverseNeighborIndex

        flat = ReverseNeighborIndex(index._rows()[0])
        everyone = np.arange(index.n_users)
        np.testing.assert_array_equal(
            index._reverse.referrers_of(everyone),
            flat.referrers_of(everyone),
        )

    def test_candidate_cache_is_owned_by_shard(self):
        dataset = random_dataset(
            n_users=24, n_items=16, density=0.2, seed=1, ratings=True
        )
        index = ShardedKnnIndex(
            dataset, KiffConfig(k=3), auto_refresh=False, n_shards=3,
            executor="serial",
        )
        index.apply(ratings_batch([0, 1, 5], [2, 2, 2], [3.0, 4.0, 5.0]))
        index.refresh()
        cached = 0
        for shard in index._shards:
            for user in shard.candidate_counts:
                assert shard_of(user, 3) == shard.shard_id
            cached += len(shard.candidate_counts)
        assert cached > 0

    def test_outboxes_carry_cross_shard_mirrors(self):
        """Every outbox targets a foreign shard, owns its rows, and is
        keyed by the WAL sequence number the refresh covers."""
        dataset = random_dataset(
            n_users=30, n_items=10, density=0.35, seed=3, ratings=True
        )
        index = ShardedKnnIndex(
            dataset, KiffConfig(k=3), auto_refresh=False, n_shards=2,
            executor="serial",
        )
        index.apply(ratings_batch([0], [0], [5.0]))
        seq = index.last_seq
        index.refresh()
        assert index.last_outboxes  # a dense dataset always crosses shards
        for outbox in index.last_outboxes:
            assert outbox.source != outbox.target
            assert outbox.seq == seq
            assert all(
                shard_of(row, 2) == outbox.target
                for row in outbox.rows.tolist()
            )
            assert all(
                shard_of(user, 2) == outbox.source
                for user in outbox.candidates.tolist()
            )

    def test_close_is_idempotent_and_terminal(self, rated_dataset):
        index = ShardedKnnIndex(
            rated_dataset, KiffConfig(k=2), n_shards=2, executor="threads"
        )
        index.apply(ratings_batch([0], [3], [4.0]))
        index.close()
        index.close()
        # close() retires the index: no silent pool re-creation.
        with pytest.raises(RuntimeError, match="closed"):
            index.apply(ratings_batch([1], [3], [4.0]))
        index.close()


class TestShardedRecovery:
    """Kill at a random event; partitioned recovery is bit-identical."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("metric", ["cosine", "jaccard"])
    def test_recovery_equals_uninterrupted_sharded_run(
        self, tmp_path, metric, seed
    ):
        dataset = random_dataset(
            n_users=16, n_items=14, density=0.15, seed=seed, ratings=True
        )
        events = random_events(seed, n_users=16)
        rng = np.random.default_rng(seed + 2048)
        kill_at = int(rng.integers(1, len(events)))
        checkpoint_every = int(rng.integers(2, 8))
        config = KiffConfig(k=4)
        state = tmp_path / "state"

        live = ShardedKnnIndex(
            dataset,
            config,
            metric=metric,
            auto_refresh=False,
            n_shards=2,
            executor="serial",
            wal=PartitionedWriteAheadLog(state, 2, fsync_every=4),
        )
        live.checkpoint(state)
        for done, event in enumerate(events[:kill_at], start=1):
            live.apply(event)
            if done % checkpoint_every == 0:
                if rng.random() < 0.5:  # checkpoints mid-dirty and clean
                    live.refresh()
                live.checkpoint(state)
        del live  # the crash: in-memory state is gone

        reference = ShardedKnnIndex(
            dataset, config, metric=metric, auto_refresh=False, n_shards=2,
            executor="serial",
        )
        reference.apply(events[:kill_at])
        reference.refresh()

        restored = ShardedKnnIndex.restore(state, executor="serial")
        assert restored.n_shards == 2
        assert restored.graph == reference.graph  # ids AND sims, exact
        assert restored.dataset == reference.dataset
        assert restored.last_seq == reference.last_seq

        # The recovered index keeps journaling into its segments; finish
        # the stream and a second recovery still agrees end to end.
        restored.apply(events[kill_at:])
        restored.refresh()
        full = ShardedKnnIndex(
            dataset, config, metric=metric, auto_refresh=False, n_shards=2,
            executor="serial",
        )
        full.apply(events)
        full.refresh()
        assert restored.graph == full.graph
        rerestored = ShardedKnnIndex.restore(state, executor="serial")
        assert rerestored.graph == full.graph

    def test_events_route_to_owner_segments(self, tmp_path):
        dataset = random_dataset(n_users=10, n_items=8, seed=4, ratings=True)
        index = ShardedKnnIndex(
            dataset,
            KiffConfig(k=3),
            auto_refresh=False,
            n_shards=2,
            executor="serial",
            wal=PartitionedWriteAheadLog(tmp_path, 2),
        )
        index.apply(
            [AddRating(0, 3, 4.0), AddRating(1, 3, 2.0), RemoveUser(3)]
        )
        new_user = index.apply(AddUser((2,), (1.0,))).new_users[0]
        from repro.persistence import read_wal

        for shard in range(2):
            for _, event in read_wal(
                tmp_path / f"wal-{shard}.jsonl", contiguous=False
            ):
                owner = (
                    shard_of(new_user, 2)
                    if isinstance(event, AddUser)
                    else shard_of(event.user, 2)
                )
                assert owner == shard
        # The merged reader reconstructs the global order 1..4.
        assert [seq for seq, _ in read_partitioned_wal(tmp_path)] == [
            1,
            2,
            3,
            4,
        ]

    def test_flat_layout_adoption_and_resharding(self, tmp_path):
        """ShardedKnnIndex.restore handles the flat layout (and any
        shard count): ownership is a pure function of the user id."""
        from repro.persistence import WriteAheadLog

        dataset = random_dataset(n_users=14, n_items=12, seed=2, ratings=True)
        state = tmp_path / "state"
        live = DynamicKnnIndex(
            dataset, KiffConfig(k=3), wal=WriteAheadLog(state / "wal.jsonl")
        )
        live.checkpoint(state)
        live.apply([AddRating(0, 5, 4.0), AddUser((1, 5), (3.0, 2.0))])
        for n_shards in (2, 3):
            adopted = ShardedKnnIndex.restore(
                state, n_shards=n_shards, executor="serial"
            )
            assert adopted.n_shards == n_shards
            assert adopted.graph == live.graph
            assert adopted.last_seq == live.last_seq

    def test_rejected_batch_rolls_back_every_segment(self, tmp_path):
        """Disk-full mid-batch: no segment keeps a phantom record."""
        dataset = random_dataset(n_users=12, n_items=10, seed=9, ratings=True)
        index = ShardedKnnIndex(
            dataset,
            KiffConfig(k=3),
            auto_refresh=False,
            n_shards=2,
            executor="serial",
            wal=PartitionedWriteAheadLog(tmp_path, 2),
        )
        index.checkpoint(tmp_path)
        from repro.streaming import Batch

        batch = Batch((AddRating(0, 4, 3.0), AddRating(1, 4, 2.0)))
        real_append = index.wal.segments[1].append
        index.wal.segments[1].append = lambda *a, **k: (_ for _ in ()).throw(
            OSError("no space left on device")
        )
        with pytest.raises(OSError, match="no space"):
            index.apply(batch)
        index.wal.segments[1].append = real_append
        assert index.last_seq == 0
        assert index.pending_events == 0
        assert list(read_partitioned_wal(tmp_path)) == []
        result = index.apply(batch)  # the retry, after space was freed
        assert result.last_seq == 2
        index.refresh()
        restored = ShardedKnnIndex.restore(tmp_path, executor="serial")
        assert restored.graph == index.graph

    def test_flat_wal_cannot_attach(self, rated_dataset, tmp_path):
        from repro.persistence import WriteAheadLog

        index = ShardedKnnIndex(
            rated_dataset, KiffConfig(k=2), n_shards=2, executor="serial"
        )
        with pytest.raises(PersistenceError, match="PartitionedWriteAheadLog"):
            index.attach_wal(WriteAheadLog(tmp_path / "wal.jsonl"))
