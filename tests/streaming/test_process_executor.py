"""The process-backed shard executor: parity, crash recovery, cleanup.

``executor="processes"`` must be invisible in the result — the same
bit-identical contract the thread/serial executors carry — while its
failure modes are physical: worker processes die (SIGKILL here), and
shared-memory segments must never outlive the index.  The suite covers:

* a parity subset of the randomized stream corpus (1/2/4 shards, both
  metrics, both pivot settings) against the sequential
  :class:`DynamicKnnIndex`,
* worker SIGKILL at several points (mid-stream, with shipped deltas
  pending, repeatedly) — the pool must respawn, replay the delta tail
  and land on the exact graph,
* partitioned checkpoint/restore driven with the process executor,
* shared-memory hygiene: no orphaned blocks after ``close()`` or GC.
"""

import gc
import os
import signal
import time
from multiprocessing import shared_memory

import pytest

from repro import DynamicKnnIndex, KiffConfig, ShardedKnnIndex
from repro.persistence import PartitionedWriteAheadLog
from repro.streaming import ratings_batch
from tests.conftest import random_dataset
from tests.streaming.test_sharding import drive, sharded_events


def make_processes_index(dataset, config, **kwargs):
    return ShardedKnnIndex(
        dataset, config, auto_refresh=False, executor="processes", **kwargs
    )


def block_exists(name: str) -> bool:
    """Is the shared-memory segment *name* still linked?"""
    try:
        block = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    block.close()
    return True


def wait_dead(pid: int, timeout: float = 5.0) -> None:
    """Block until *pid* is gone (reaped or reparented-and-exited)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except OSError:
            return
        time.sleep(0.01)


class TestProcessParity:
    """Corpus subset: the worker fan-out must be invisible in the result."""

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("metric", ["cosine", "jaccard"])
    def test_processes_equal_sequential(self, metric, seed):
        dataset = random_dataset(
            n_users=18, n_items=14, density=0.15, seed=seed, ratings=True
        )
        events, refresh_after = sharded_events(seed, 18)
        config = KiffConfig(k=4)
        reference = drive(
            DynamicKnnIndex(
                dataset, config, metric=metric, auto_refresh=False
            ),
            events,
            refresh_after,
        )
        for n_shards in (1, 2, 4):
            index = drive(
                make_processes_index(
                    dataset, config, metric=metric, n_shards=n_shards
                ),
                events,
                refresh_after,
            )
            try:
                assert index.graph == reference.graph  # ids AND sims
                assert index.dataset == reference.dataset
                assert index.last_seq == reference.last_seq
            finally:
                index.close()

    def test_pivot_off_parity(self):
        dataset = random_dataset(
            n_users=20, n_items=14, density=0.15, seed=9, ratings=True
        )
        events, refresh_after = sharded_events(9, 20)
        config = KiffConfig(k=4, pivot=False)
        reference = drive(
            DynamicKnnIndex(dataset, config, auto_refresh=False),
            events,
            refresh_after,
        )
        index = drive(
            make_processes_index(dataset, config, n_shards=3),
            events,
            refresh_after,
        )
        try:
            assert index.graph == reference.graph
        finally:
            index.close()

    def test_non_profile_local_metric_parity(self):
        """Adamic-Adar re-derives its item weights worker-side from the
        shared matrix; the result must still match exactly."""
        dataset = random_dataset(
            n_users=20, n_items=14, density=0.15, seed=5, ratings=True
        )
        events, refresh_after = sharded_events(5, 20, n_events=20)
        config = KiffConfig(k=4)
        reference = drive(
            DynamicKnnIndex(
                dataset, config, metric="adamic_adar", auto_refresh=False
            ),
            events,
            refresh_after,
        )
        index = drive(
            make_processes_index(
                dataset, config, metric="adamic_adar", n_shards=2
            ),
            events,
            refresh_after,
        )
        try:
            assert index.graph == reference.graph
        finally:
            index.close()

    def test_custom_profile_index_is_rejected(self, rated_dataset):
        """Workers rebuild the base ProfileIndex; a subclass's extra
        state cannot travel, so refresh must fail loudly, not drift."""
        from repro.similarity.base import ProfileIndex

        class ExtendedIndex(ProfileIndex):
            pass

        index = make_processes_index(
            rated_dataset, KiffConfig(k=2), n_shards=2
        )
        try:
            index.engine.index = ExtendedIndex(rated_dataset)
            index.apply(ratings_batch([0], [3], [4.0]))
            with pytest.raises(TypeError, match="ExtendedIndex"):
                index.refresh()
        finally:
            index.close()

    def test_auto_refresh_stays_exact(self, rated_dataset):
        from repro.streaming import cold_rebuild_graph

        index = ShardedKnnIndex(
            rated_dataset, KiffConfig(k=2), n_shards=2, executor="processes"
        )
        try:
            for user, item, rating in [(0, 3, 4.0), (4, 0, 2.0), (1, 4, 5.0)]:
                index.apply(ratings_batch([user], [item], [rating]))
                assert index.pending_events == 0
                assert index.graph == cold_rebuild_graph(
                    index.dataset, index.config
                )
        finally:
            index.close()


class TestWorkerDeath:
    """SIGKILL a worker; the pool respawns and replays the delta tail."""

    @pytest.mark.parametrize("victim", [0, 1])
    def test_kill_mid_stream(self, victim):
        dataset = random_dataset(
            n_users=18, n_items=14, density=0.15, seed=3, ratings=True
        )
        events, _ = sharded_events(3, 18)
        config = KiffConfig(k=4)
        reference = DynamicKnnIndex(dataset, config, auto_refresh=False)
        reference.apply(events)
        reference.refresh()

        index = make_processes_index(dataset, config, n_shards=2)
        try:
            index.apply(events[:8])
            index.refresh()  # the pool is live now
            pid = index._procpool.pids[victim]
            os.kill(pid, signal.SIGKILL)
            wait_dead(pid)
            index.apply(events[8:])
            index.refresh()
            assert index.graph == reference.graph  # ids AND sims, exact
            assert index.last_seq == reference.last_seq
        finally:
            index.close()

    def test_kill_with_pending_deltas(self):
        """Deltas shipped to a worker that then dies must be replayed
        (the tail) into its respawned replacement."""
        dataset = random_dataset(
            n_users=18, n_items=14, density=0.15, seed=7, ratings=True
        )
        events, _ = sharded_events(7, 18)
        config = KiffConfig(k=4)
        reference = DynamicKnnIndex(dataset, config, auto_refresh=False)
        reference.apply(events)
        reference.refresh()

        index = make_processes_index(dataset, config, n_shards=3)
        try:
            index.apply(events[:5])
            index.refresh()
            index.apply(events[5:12])  # deltas now shipped and pending
            pid = index._procpool.pids[0]
            os.kill(pid, signal.SIGKILL)
            wait_dead(pid)
            index.apply(events[12:])
            index.refresh()
            assert index.graph == reference.graph
        finally:
            index.close()

    def test_repeated_kills(self):
        """Every refresh loses a worker; every refresh still lands exact."""
        dataset = random_dataset(
            n_users=16, n_items=12, density=0.2, seed=1, ratings=True
        )
        events, _ = sharded_events(1, 16, n_events=12)
        config = KiffConfig(k=3)
        reference = DynamicKnnIndex(dataset, config, auto_refresh=False)
        index = make_processes_index(dataset, config, n_shards=2)
        try:
            for lo in range(0, len(events), 4):
                chunk = events[lo : lo + 4]
                reference.apply(chunk)
                reference.refresh()
                index.apply(chunk)
                if index._procpool is not None and index._procpool.alive:
                    pid = index._procpool.pids[lo // 4 % 2]
                    os.kill(pid, signal.SIGKILL)
                    wait_dead(pid)
                index.refresh()
                assert index.graph == reference.graph
        finally:
            index.close()


class TestProcessRecovery:
    """Partitioned durability driven through the process executor."""

    def test_checkpoint_restore_roundtrip(self, tmp_path):
        dataset = random_dataset(
            n_users=16, n_items=14, density=0.15, seed=4, ratings=True
        )
        events, _ = sharded_events(4, 16)
        config = KiffConfig(k=4)
        state = tmp_path / "state"

        live = make_processes_index(
            dataset,
            config,
            n_shards=2,
            wal=PartitionedWriteAheadLog(state, 2, fsync_every=4),
        )
        live.checkpoint(state)
        live.apply(events[:15])
        live.refresh()
        live.checkpoint(state)
        live.apply(events[15:])  # journaled beyond the checkpoint
        seq = live.last_seq
        live.close()

        reference = DynamicKnnIndex(dataset, config, auto_refresh=False)
        reference.apply(events)
        reference.refresh()

        restored = ShardedKnnIndex.restore(state, executor="processes")
        try:
            assert restored.executor == "processes"
            assert restored.last_seq == seq
            assert restored.graph == reference.graph
        finally:
            restored.close()


class TestSharedMemoryHygiene:
    """No leaked segments, no leaked workers."""

    def _streamed_index(self):
        dataset = random_dataset(
            n_users=16, n_items=12, density=0.2, seed=2, ratings=True
        )
        index = make_processes_index(dataset, KiffConfig(k=3), n_shards=2)
        index.apply(ratings_batch([0, 1, 2], [3, 3, 3], [4.0, 5.0, 3.0]))
        index.refresh()
        return index

    def test_close_unlinks_blocks_and_stops_workers(self):
        index = self._streamed_index()
        name = index._arena.name
        pids = index._procpool.pids
        assert name is not None and block_exists(name)
        index.close()
        assert not block_exists(name)
        for pid in pids:
            wait_dead(pid)
        index.close()  # idempotent

    def test_close_retires_the_index(self):
        """close() is terminal: mutation and query entry points raise a
        clear RuntimeError instead of silently respawning a pool (the
        historical behaviour, which made leaks easy to reintroduce)."""
        index = self._streamed_index()
        name = index._arena.name
        index.close()
        assert not block_exists(name)
        with pytest.raises(RuntimeError, match="closed"):
            index.apply(ratings_batch([3], [5], [2.0]))
        with pytest.raises(RuntimeError, match="closed"):
            index.refresh()
        assert not block_exists(name)  # no pool was respawned

    def test_gc_unlinks_blocks(self):
        index = self._streamed_index()
        name = index._arena.name
        pids = index._procpool.pids
        del index
        gc.collect()
        assert not block_exists(name)
        for pid in pids:
            wait_dead(pid)
