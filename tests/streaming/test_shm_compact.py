"""ShmArena capacity accounting and shrink-after-deletion regression.

The arena grows geometrically and, historically, never shrank: after a
mass deletion the block kept its high-water capacity forever.  These
tests pin the fix — ``stats()`` exposes the slack and ``compact()``
returns it to the OS — plus the checkpoint-time invocation on the
sharded index.
"""

import numpy as np
import pytest

from repro import KiffConfig, RemoveUser, ShardedKnnIndex
from repro.streaming.shm import ShmArena, attach_block, unpack_arrays
from tests.conftest import random_dataset


def _payload(n, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "ids": rng.integers(0, 100, size=n).astype(np.int32),
        "scores": rng.random(n).astype(np.float32),
    }


class TestArenaStats:
    def test_empty_arena(self):
        arena = ShmArena(tag="repro-test")
        try:
            stats = arena.stats()
            assert stats["capacity_bytes"] == 0
            assert stats["payload_bytes"] == 0
            assert stats["high_water_bytes"] == 0
            assert stats["slack_bytes"] == 0
        finally:
            arena.close()

    def test_high_water_outlives_shrinking_payloads(self):
        arena = ShmArena(tag="repro-test")
        try:
            arena.publish(_payload(10_000))
            high = arena.stats()["high_water_bytes"]
            assert high >= 10_000 * 8
            arena.publish(_payload(10))
            stats = arena.stats()
            # Capacity (and the mark) stay at the large allocation.
            assert stats["high_water_bytes"] == high
            assert stats["capacity_bytes"] >= high
            assert stats["slack_bytes"] > 0
        finally:
            arena.close()


class TestArenaCompact:
    def test_compact_releases_slack_after_mass_deletion(self):
        arena = ShmArena(tag="repro-test")
        try:
            arena.publish(_payload(50_000))
            name, manifest = arena.publish(_payload(50))
            slack = arena.stats()["slack_bytes"]
            assert slack > 0
            freed = arena.compact()
            assert freed == slack
            stats = arena.stats()
            assert stats["slack_bytes"] == 0
            assert stats["capacity_bytes"] == stats["payload_bytes"]
            # The block was reallocated under a new name...
            assert arena.name != name
            # ...but packing is deterministic from offset 0, so the old
            # manifest's offsets stay valid against the new block.
            block = attach_block(arena.name)
            try:
                views = unpack_arrays(block, manifest)
                expected = _payload(50)
                np.testing.assert_array_equal(views["ids"], expected["ids"])
                np.testing.assert_array_equal(
                    views["scores"], expected["scores"]
                )
            finally:
                block.close()
        finally:
            arena.close()

    def test_compact_is_a_noop_when_tight(self):
        arena = ShmArena(tag="repro-test")
        try:
            arena.publish(_payload(100))
            arena.compact()
            name = arena.name
            assert arena.compact() == 0
            assert arena.name == name  # no pointless reallocation
        finally:
            arena.close()

    def test_compact_before_any_publish(self):
        arena = ShmArena(tag="repro-test")
        try:
            assert arena.compact() == 0
        finally:
            arena.close()

    def test_publish_after_compact_round_trips(self):
        arena = ShmArena(tag="repro-test")
        try:
            arena.publish(_payload(20_000))
            arena.publish(_payload(20))
            arena.compact()
            name, manifest = arena.publish(_payload(500, seed=3))
            block = attach_block(name)
            try:
                views = unpack_arrays(block, manifest)
                expected = _payload(500, seed=3)
                np.testing.assert_array_equal(views["ids"], expected["ids"])
            finally:
                block.close()
        finally:
            arena.close()


class TestCheckpointCompaction:
    @pytest.mark.parametrize("executor", ["processes"])
    def test_checkpoint_shrinks_the_arena(self, tmp_path, executor):
        """Mass deletions then checkpoint(): the quiescent point hands
        the slack back, and the next refresh still round-trips."""
        dataset = random_dataset(
            n_users=40, n_items=20, density=0.3, seed=2, ratings=True
        )
        index = ShardedKnnIndex(
            dataset,
            KiffConfig(k=4),
            auto_refresh=False,
            n_shards=2,
            executor=executor,
        )
        try:
            # The arena is created lazily on the first process fan-out,
            # so dirty a user before refreshing.
            index.apply(RemoveUser(39))
            index.refresh()
            before = index.memory_stats()
            assert before["shm_arena_bytes"] > 0
            for user in range(30):  # mass deletion
                index.apply(RemoveUser(user))
            index.refresh()
            index.checkpoint(tmp_path)
            after = index.memory_stats()
            assert after["shm_arena_high_water_bytes"] >= (
                after["shm_arena_bytes"]
            )
            assert after["shm_arena_slack_bytes"] == 0
            assert after["shm_arena_bytes"] <= before["shm_arena_bytes"]
            # The compacted arena still serves refresh fan-outs.
            index.apply(RemoveUser(35))
            index.refresh()
        finally:
            index.close()
