"""memory_stats(): per-component byte breakdowns on both index classes.

The compact layout's acceptance bar — resident bytes per user — is
computed from these counters, so the suite pins the component keys, the
exactness of the array accounting, and the ``legacy_*`` analytic twins
that price the same arrays at the historical int64/float64 widths.
"""

import numpy as np

from repro import DynamicKnnIndex, KiffConfig, ShardedKnnIndex
from repro.layout import ID_DTYPE, SCORE_DTYPE
from repro.streaming import AddRating
from tests.conftest import random_dataset

COMPONENT_KEYS = {
    "dataset_csr_bytes",
    "graph_rows_bytes",
    "profile_index_bytes",
    "snapshot_rows_bytes",
    "reverse_index_entries",
    "candidate_cache_entries",
    "cached_rater_entries",
    "legacy_dataset_csr_bytes",
    "legacy_graph_rows_bytes",
    "total_bytes",
}


def _index(**kwargs):
    dataset = random_dataset(
        n_users=30, n_items=20, density=0.2, seed=1, ratings=True
    )
    return DynamicKnnIndex(
        dataset, KiffConfig(k=4), auto_refresh=False, **kwargs
    )


class TestFlatIndex:
    def test_component_keys(self):
        index = _index()
        try:
            stats = index.memory_stats()
            assert COMPONENT_KEYS <= set(stats)
            assert all(
                isinstance(value, int) and value >= 0
                for value in stats.values()
            )
        finally:
            index.close()

    def test_graph_rows_bytes_are_exact(self):
        index = _index()
        try:
            stats = index.memory_stats()
            expected = index._neighbors.nbytes + index._sims.nbytes
            assert stats["graph_rows_bytes"] == expected
            assert index._neighbors.dtype == ID_DTYPE
            assert index._sims.dtype == SCORE_DTYPE
        finally:
            index.close()

    def test_legacy_twins_double_the_compact_arrays(self):
        index = _index()
        try:
            stats = index.memory_stats()
            # Graph rows are pure int32 ids + float32 sims: the legacy
            # layout costs exactly twice.
            assert stats["legacy_graph_rows_bytes"] == (
                2 * stats["graph_rows_bytes"]
            )
            # The dataset keeps float64 ratings, so the saving is
            # real but smaller than 2x.
            assert (
                stats["dataset_csr_bytes"]
                < stats["legacy_dataset_csr_bytes"]
                < 2 * stats["dataset_csr_bytes"]
            )
        finally:
            index.close()

    def test_total_is_sum_of_byte_components(self):
        index = _index()
        try:
            stats = index.memory_stats()
            assert stats["total_bytes"] == (
                stats["dataset_csr_bytes"]
                + stats["graph_rows_bytes"]
                + stats["profile_index_bytes"]
                + stats["snapshot_rows_bytes"]
            )
        finally:
            index.close()

    def test_stats_track_growth(self):
        index = _index()
        try:
            before = index.memory_stats()
            index.apply(
                [AddRating(u, 19, 5.0) for u in range(10)]
            )
            index.refresh()
            after = index.memory_stats()
            assert after["dataset_csr_bytes"] > before["dataset_csr_bytes"]
        finally:
            index.close()


class TestShardedIndex:
    def test_includes_arena_accounting(self):
        dataset = random_dataset(
            n_users=24, n_items=16, density=0.2, seed=2, ratings=True
        )
        index = ShardedKnnIndex(
            dataset,
            KiffConfig(k=3),
            auto_refresh=False,
            n_shards=2,
            executor="serial",
        )
        try:
            stats = index.memory_stats()
            assert COMPONENT_KEYS <= set(stats)
            # Serial executor: no shared-memory arena, zeros reported.
            assert stats["shm_arena_bytes"] == 0
            assert stats["shm_arena_high_water_bytes"] == 0
            assert stats["shm_arena_slack_bytes"] == 0
        finally:
            index.close()

    def test_cache_entries_count_shard_owned_state(self):
        dataset = random_dataset(
            n_users=24, n_items=16, density=0.25, seed=3, ratings=True
        )
        index = ShardedKnnIndex(
            dataset,
            KiffConfig(k=3),
            auto_refresh=False,
            n_shards=2,
            executor="serial",
        )
        try:
            index.refresh()
            stats = index.memory_stats()
            expected = sum(
                len(counts)
                for shard in index._shards
                for counts in shard.candidate_counts.values()
            )
            assert stats["candidate_cache_entries"] == expected
        finally:
            index.close()


class TestServingSurface:
    def test_server_stats_op_reports_memory(self):
        import asyncio
        import json

        from repro.serving.server import KnnServer

        async def drive():
            index = _index()
            server = KnnServer(index, port=0)
            await server.start()
            try:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b'{"op": "stats"}\n')
                await writer.drain()
                reply = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return reply, index.memory_stats()
            finally:
                await server.stop()
                index.close()

        reply, expected = asyncio.run(drive())
        assert reply["ok"] is True
        assert reply["memory"] == expected
