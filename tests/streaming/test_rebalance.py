"""Live shard re-balancing: WAL-fenced migration without stopping ingest.

The contract of :meth:`ShardedKnnIndex.rebalance` is that ownership is
invisible in the result: moving users between shards (or changing the
shard count) mid-stream leaves the graph **bit-identical** — neighbour
ids and similarities — to the sequential :class:`DynamicKnnIndex` on
the same events, at every point of the stream, on every executor.  The
fence pair (``migrate_begin``/``migrate_commit``) journaled around each
flip makes the migration crash-safe: recovery replays a committed flip
at its exact sequence position and rolls an uncommitted one back.
"""

import asyncio
import json
import os
import pickle
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import (
    DynamicKnnIndex,
    KiffConfig,
    KnnServer,
    ShardMap,
    ShardPlan,
    ShardedKnnIndex,
)
from repro.graph import load_graph
from repro.persistence import (
    PartitionedWriteAheadLog,
    read_partitioned_wal,
)
from repro.scheduling import RefreshScheduler, SchedulerPolicy
from repro.streaming import AddRating, MigrateCommit, RemoveUser
from tests.conftest import random_dataset
from tests.streaming.test_sharding import drive, sharded_events

REPO_ROOT = Path(__file__).resolve().parents[2]


def _plan_for(seed):
    """A seed-dependent mid-stream plan: moves or a shard-count change."""
    if seed % 3 == 0:
        return ShardPlan(moves=((1, 1), (4, 0), (7, 1)))
    if seed % 3 == 1:
        return ShardPlan(n_shards=3)
    return ShardPlan(moves=((0, 1),), n_shards=4)


def drive_with_rebalance(index, events, refresh_after, plan, at):
    """Replay a stream, injecting ``rebalance(plan)`` after event *at*."""
    for done, (event, refresh) in enumerate(
        zip(events, refresh_after), start=1
    ):
        index.apply(event)
        if refresh:
            index.refresh()
        if done == at:
            index.rebalance(plan)
    index.refresh()
    return index


class TestShardMap:
    def test_modulo_base_and_overrides(self):
        base = ShardMap(3)
        assert [base.owner(user) for user in range(6)] == [0, 1, 2, 0, 1, 2]
        moved = base.with_moves([(4, 2), (5, 0)])
        assert moved.owner(4) == 2
        assert moved.owner(5) == 0
        assert moved.owner(1) == 1  # untouched users keep the modulo rule
        assert moved.overrides == {4: 2, 5: 0}

    def test_redundant_overrides_normalize_away(self):
        assert ShardMap(2, {4: 0, 5: 1}).overrides == {}
        assert ShardMap(2, {4: 0, 5: 0}).overrides == {5: 0}

    def test_owners_matches_owner_elementwise(self):
        shard_map = ShardMap(3, {1: 2, 9: 0, 14: 1})
        users = np.arange(20, dtype=np.int64)
        vectorized = shard_map.owners(users)
        assert vectorized.tolist() == [
            shard_map.owner(user) for user in users
        ]

    def test_owned_rows_partition_the_population(self):
        shard_map = ShardMap(3, {0: 2, 7: 0})
        rows = [shard_map.owned_rows(shard, 11).tolist() for shard in (0, 1, 2)]
        flat = sorted(row for shard_rows in rows for row in shard_rows)
        assert flat == list(range(11))
        assert 0 in rows[2] and 7 in rows[0]

    def test_validation_and_equality(self):
        with pytest.raises(ValueError):
            ShardMap(0)
        with pytest.raises(ValueError):
            ShardMap(2, {3: 2})
        assert ShardMap(2, {3: 0}) == ShardMap(2, {3: 0})
        assert ShardMap(2, {3: 0}) != ShardMap(2)
        assert hash(ShardMap(2, {3: 0})) == hash(ShardMap(2, {3: 0}))

    def test_pickles_for_worker_transport(self):
        shard_map = ShardMap(4, {2: 1, 11: 3})
        clone = pickle.loads(pickle.dumps(shard_map))
        assert clone == shard_map
        assert clone.owner(2) == 1


class TestRebalanceParity:
    """Mid-stream rebalance injection over the randomized corpus."""

    @pytest.mark.parametrize("seed", range(13))
    @pytest.mark.parametrize("metric", ["cosine", "jaccard"])
    def test_rebalanced_equals_sequential(self, metric, seed):
        dataset = random_dataset(
            n_users=18, n_items=14, density=0.15, seed=seed, ratings=True
        )
        events, refresh_after = sharded_events(seed, 18)
        config = KiffConfig(k=4)
        reference = drive(
            DynamicKnnIndex(
                dataset, config, metric=metric, auto_refresh=False
            ),
            events,
            refresh_after,
        )
        sharded = drive_with_rebalance(
            ShardedKnnIndex(
                dataset,
                config,
                metric=metric,
                auto_refresh=False,
                n_shards=2,
                executor="serial",
            ),
            events,
            refresh_after,
            _plan_for(seed),
            at=len(events) // 2,
        )
        assert sharded.graph == reference.graph  # ids AND sims, exact
        assert sharded.dataset == reference.dataset

    @pytest.mark.parametrize("executor", ["threads", "processes"])
    def test_rebalanced_parity_on_parallel_executors(self, executor):
        dataset = random_dataset(
            n_users=18, n_items=14, density=0.15, seed=3, ratings=True
        )
        events, refresh_after = sharded_events(3, 18)
        config = KiffConfig(k=4)
        reference = drive(
            DynamicKnnIndex(dataset, config, auto_refresh=False),
            events,
            refresh_after,
        )
        sharded = ShardedKnnIndex(
            dataset,
            config,
            auto_refresh=False,
            n_shards=2,
            executor=executor,
        )
        try:
            third = len(events) // 3
            for done, (event, refresh) in enumerate(
                zip(events, refresh_after), start=1
            ):
                sharded.apply(event)
                if refresh:
                    sharded.refresh()
                if done == third:
                    sharded.rebalance(ShardPlan(moves=((2, 1), (5, 0))))
                if done == 2 * third:
                    sharded.rebalance(ShardPlan(n_shards=3))
            sharded.refresh()
            assert sharded.graph == reference.graph
        finally:
            sharded.close()
            reference.close()


class TestRebalanceApi:
    def _index(self, n_shards=2, n_users=14):
        dataset = random_dataset(
            n_users=n_users, n_items=12, density=0.2, seed=5, ratings=True
        )
        return ShardedKnnIndex(
            dataset,
            KiffConfig(k=3),
            auto_refresh=False,
            n_shards=n_shards,
            executor="serial",
        )

    def test_noop_plan_neither_moves_nor_journals(self, tmp_path):
        index = self._index()
        index.attach_wal(PartitionedWriteAheadLog(tmp_path, 2))
        stats = index.rebalance(ShardPlan(moves=((0, 0), (3, 1))))
        assert stats.users_moved == 0
        assert stats.seq_begin == stats.seq_commit == index.last_seq
        assert index.wal.last_seq == 0  # no fence pair for a no-op
        index.close()

    def test_plan_validation(self):
        index = self._index()
        with pytest.raises(TypeError):
            index.rebalance({"n_shards": 3})
        with pytest.raises(ValueError):
            index.rebalance(ShardPlan(moves=((0, 7),)))  # shard range
        with pytest.raises(ValueError):
            index.rebalance(ShardPlan(moves=((99, 1),)))  # user range
        with pytest.raises(ValueError):
            index.rebalance(ShardPlan(n_shards=0))
        index.close()

    def test_stats_and_log(self):
        index = self._index()
        stats = index.rebalance(ShardPlan(moves=((1, 0),)))
        assert stats.users_moved == 1
        assert (stats.shards_before, stats.shards_after) == (2, 2)
        assert stats.wall_time >= 0.0
        assert index.rebalance_log == [stats]
        assert index.shard_map.overrides == {1: 0}
        index.close()

    def test_moved_users_go_dirty_and_reconverge(self):
        index = self._index()
        index.refresh()
        assert not index.dirty_users
        index.rebalance(ShardPlan(moves=((1, 0), (6, 1))))
        # The destination shard seeds its candidate cache on the next
        # refresh; until then the moved users are queued as dirty.
        assert index.dirty_users == frozenset({1, 6})
        graph_before = index.graph
        index.refresh()
        # Refreshing a converged row is idempotent: bit-identical.
        assert index.graph == graph_before
        index.close()

    def test_snapshot_republishes_after_rebalance(self):
        index = self._index()
        index.refresh()
        before = index.pin()
        index.rebalance(ShardPlan(moves=((1, 0),)))
        after = index.pin()
        assert after.version == index.last_seq
        np.testing.assert_array_equal(
            before.neighbors_of(1), after.neighbors_of(1)
        )
        index.close()


class TestRebalanceDurability:
    def _durable(self, tmp_path, n_shards=2):
        dataset = random_dataset(
            n_users=16, n_items=14, density=0.15, seed=5, ratings=True
        )
        events, refresh_after = sharded_events(5, 16)
        state = tmp_path / "state"
        index = ShardedKnnIndex(
            dataset,
            KiffConfig(k=4),
            auto_refresh=False,
            n_shards=n_shards,
            executor="serial",
            wal=PartitionedWriteAheadLog(state, n_shards, fsync_every=4),
        )
        index.checkpoint(state)
        return index, events, refresh_after, state

    def test_restore_replays_committed_flips(self, tmp_path):
        index, events, refresh_after, state = self._durable(tmp_path)
        drive(index, events[:10], refresh_after[:10])
        index.rebalance(ShardPlan(moves=((0, 1), (3, 0))))
        drive(index, events[10:18], refresh_after[10:18])
        index.rebalance(ShardPlan(n_shards=3))
        drive(index, events[18:], refresh_after[18:])
        reference_graph = index.graph
        reference_map = index.shard_map
        reference_seq = index.last_seq
        del index  # the crash: in-memory state is gone

        restored = ShardedKnnIndex.restore(state, executor="serial")
        assert restored.n_shards == 3
        assert restored.shard_map == reference_map
        assert restored.graph == reference_graph
        assert restored.last_seq == reference_seq
        # The fence pair is journaled as consecutive control records.
        kinds = [
            type(event).__name__
            for _, event in read_partitioned_wal(state)
        ]
        assert kinds.count("MigrateBegin") == 2
        assert kinds.count("MigrateCommit") == 2
        restored.close()

    def test_checkpoint_carries_overrides(self, tmp_path):
        index, events, refresh_after, state = self._durable(tmp_path)
        drive(index, events[:8], refresh_after[:8])
        index.rebalance(ShardPlan(moves=((0, 1),)))
        index.refresh()
        index.checkpoint(state)  # overrides must survive via meta alone
        drive(index, events[8:14], refresh_after[8:14])
        reference_graph, reference_seq = index.graph, index.last_seq
        reference_map = index.shard_map
        del index

        restored = ShardedKnnIndex.restore(state, executor="serial")
        assert restored.shard_map == reference_map
        assert restored.graph == reference_graph
        assert restored.last_seq == reference_seq
        restored.close()

    def test_begin_without_commit_rolls_back(self, tmp_path):
        """A crash between the fences must not flip ownership."""
        index, events, refresh_after, state = self._durable(tmp_path)
        drive(index, events[:10], refresh_after[:10])
        reference_graph = index.graph
        reference_map = index.shard_map
        crash_seq = index.last_seq
        del index
        dangling = {
            "seq": crash_seq + 1,
            "type": "migrate_begin",
            "moves": [[0, 1], [3, 0]],
            "n_shards": None,
        }
        with open(state / "wal-0.jsonl", "a") as fh:
            fh.write(json.dumps(dangling) + "\n")

        restored = ShardedKnnIndex.restore(state, executor="serial")
        assert restored.shard_map == reference_map  # no flip
        assert restored.graph == reference_graph
        assert restored.last_seq == crash_seq + 1  # fence consumed
        # Journaling continues cleanly past the dangling fence.
        restored.apply(AddRating(1, 3, 4.0))
        restored.refresh()
        final_graph, final_seq = restored.graph, restored.last_seq
        restored.close()
        again = ShardedKnnIndex.restore(state, executor="serial")
        assert again.graph == final_graph
        assert again.last_seq == final_seq
        again.close()

    def test_explicit_shards_overrides_replayed_flip(self, tmp_path):
        index, events, refresh_after, state = self._durable(tmp_path)
        drive(index, events[:10], refresh_after[:10])
        index.rebalance(ShardPlan(n_shards=3))
        index.refresh()
        reference_graph, reference_seq = index.graph, index.last_seq
        del index
        restored = ShardedKnnIndex.restore(
            state, n_shards=4, executor="serial"
        )
        assert restored.n_shards == 4
        assert restored.wal.n_shards == 4  # segments re-homed
        assert restored.graph == reference_graph
        assert restored.last_seq == reference_seq
        restored.close()

    def test_reshard_reopens_wal_at_new_segment_count(self, tmp_path):
        index, events, refresh_after, state = self._durable(tmp_path)
        drive(index, events[:6], refresh_after[:6])
        index.rebalance(ShardPlan(n_shards=4))
        assert index.wal.n_shards == 4
        seq_before = index.last_seq
        index.apply(AddRating(3, 2, 4.0))  # lands in a new-count segment
        assert index.last_seq == seq_before + 1
        index.refresh()
        reference_graph, reference_seq = index.graph, index.last_seq
        del index
        restored = ShardedKnnIndex.restore(state)
        assert restored.n_shards == 4
        assert restored.graph == reference_graph
        assert restored.last_seq == reference_seq
        restored.close()


class TestRestoreReshardingEdgeCases:
    def test_rebalance_down_to_one_shard(self, tmp_path):
        dataset = random_dataset(
            n_users=14, n_items=12, density=0.2, seed=9, ratings=True
        )
        events, refresh_after = sharded_events(9, 14)
        state = tmp_path / "state"
        index = ShardedKnnIndex(
            dataset,
            KiffConfig(k=3),
            auto_refresh=False,
            n_shards=3,
            executor="serial",
            wal=PartitionedWriteAheadLog(state, 3, fsync_every=4),
        )
        index.checkpoint(state)
        drive(index, events[:10], refresh_after[:10])
        stats = index.rebalance(ShardPlan(n_shards=1))
        assert stats.shards_after == 1
        drive(index, events[10:], refresh_after[10:])
        reference_graph, reference_seq = index.graph, index.last_seq
        reference = drive(
            DynamicKnnIndex(dataset, KiffConfig(k=3), auto_refresh=False),
            events,
            refresh_after,
        )
        assert reference_graph == reference.graph
        del index
        restored = ShardedKnnIndex.restore(state)
        assert restored.n_shards == 1
        assert restored.graph == reference_graph
        assert restored.last_seq == reference_seq
        restored.close()

    def test_tombstoned_users_mid_plan(self, tmp_path):
        """Moving a removed (tombstoned) user is a harmless no-op row."""
        dataset = random_dataset(
            n_users=14, n_items=12, density=0.2, seed=4, ratings=True
        )
        state = tmp_path / "state"
        index = ShardedKnnIndex(
            dataset,
            KiffConfig(k=3),
            auto_refresh=False,
            n_shards=2,
            executor="serial",
            wal=PartitionedWriteAheadLog(state, 2, fsync_every=4),
        )
        index.checkpoint(state)
        index.apply([RemoveUser(3), AddRating(1, 5, 4.0)])
        index.refresh()
        stats = index.rebalance(ShardPlan(moves=((3, 0), (1, 0))))
        assert stats.users_moved >= 1
        index.refresh()
        reference = DynamicKnnIndex(
            dataset, KiffConfig(k=3), auto_refresh=False
        )
        reference.apply([RemoveUser(3), AddRating(1, 5, 4.0)])
        reference.refresh()
        assert index.graph == reference.graph
        reference_graph, reference_map = index.graph, index.shard_map
        del index
        restored = ShardedKnnIndex.restore(state)
        assert restored.shard_map == reference_map
        assert restored.graph == reference_graph
        restored.close()

    def test_rebalance_immediately_after_legacy_v1_restore(self, tmp_path):
        """A v1 flat checkpoint adopts as sharded, then rebalances."""
        from tests.persistence.test_checkpoint_compat import (
            _converged_index,
            _write_legacy_v1,
        )

        index = _converged_index()
        try:
            _write_legacy_v1(index, tmp_path)
            reference_graph = index.graph
        finally:
            index.close()
        adopted = ShardedKnnIndex.restore(tmp_path, executor="serial")
        stats = adopted.rebalance(ShardPlan(moves=((0, 1),), n_shards=3))
        assert stats.shards_after == 3
        adopted.refresh()
        assert adopted.graph == reference_graph
        final_graph, final_seq = adopted.graph, adopted.last_seq
        final_map = adopted.shard_map
        adopted.close()
        again = ShardedKnnIndex.restore(tmp_path)
        assert again.n_shards == 3
        assert again.shard_map == final_map
        assert again.graph == final_graph
        assert again.last_seq == final_seq
        again.close()


class TestSchedulerComposition:
    def _scheduled(self, queue_bound=None):
        dataset = random_dataset(
            n_users=14, n_items=12, density=0.2, seed=6, ratings=True
        )
        index = ShardedKnnIndex(
            dataset,
            KiffConfig(k=3),
            auto_refresh=False,
            n_shards=2,
            executor="serial",
        )
        policy = SchedulerPolicy(
            max_event_lag=1000, queue_bound=queue_bound
        )
        return RefreshScheduler(index, policy)

    def test_migration_counts_against_queue_bound(self):
        scheduler = self._scheduled(queue_bound=4)
        index = scheduler.index
        index.refresh()
        # Fill the queue right up to the bound, then rebalance: the
        # scheduler must shed (never reject an operator action) before
        # admitting the migration's dirty set.
        for user in range(4):
            scheduler.submit(AddRating(user, 2, 2.5))
        assert scheduler.queue_depth == 4
        signals_before = index.maintenance.scheduler_backpressure
        stats = scheduler.rebalance(ShardPlan(moves=((1, 0), (6, 1))))
        assert stats.users_moved == 2
        assert index.maintenance.scheduler_backpressure == signals_before + 1
        assert scheduler.queue_depth <= 4  # bound still holds
        scheduler.drain()
        assert not index.dirty_users
        scheduler.close()

    def test_moved_users_are_stamped_and_drain_to_parity(self):
        scheduler = self._scheduled()
        index = scheduler.index
        index.refresh()
        scheduler.rebalance(ShardPlan(n_shards=3))
        assert set(scheduler._since) >= set(index.dirty_users)
        scheduler.drain()
        reference = DynamicKnnIndex(
            index.dataset, KiffConfig(k=3), auto_refresh=False
        )
        reference.refresh()
        assert index.graph == reference.graph
        scheduler.close()


class TestServeRebalanceOp:
    @pytest.fixture
    def index(self):
        dataset = random_dataset(
            n_users=20, n_items=15, density=0.2, seed=12, ratings=True
        )
        ix = ShardedKnnIndex(
            dataset,
            KiffConfig(k=4),
            auto_refresh=False,
            n_shards=2,
            executor="serial",
        )
        yield ix
        ix.close()

    def _run(self, index, scenario, **kwargs):
        async def wrapper():
            server = KnnServer(index, port=0, **kwargs)
            await server.start()
            try:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    return await scenario(server, reader, writer)
                finally:
                    writer.close()
            finally:
                await server.stop()

        return asyncio.run(wrapper())

    @staticmethod
    async def _ask(reader, writer, request):
        writer.write(json.dumps(request).encode() + b"\n")
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=10)
        return json.loads(line)

    def test_rebalance_op_flips_ownership_live(self, index):
        async def scenario(server, reader, writer):
            stats = await self._ask(reader, writer, {"op": "stats"})
            assert stats["sharding"]["n_shards"] == 2
            assert stats["sharding"]["rebalances"] == 0
            reply = await self._ask(
                reader,
                writer,
                {"op": "rebalance", "shards": 3, "moves": [[1, 0]]},
            )
            assert reply["ok"] is True
            assert reply["shards_after"] == 3
            assert reply["users_moved"] > 0
            stats = await self._ask(reader, writer, {"op": "stats"})
            assert stats["sharding"]["n_shards"] == 3
            assert stats["sharding"]["overrides"] == 1
            assert stats["sharding"]["rebalances"] == 1
            # Queries keep answering on the republished snapshot.
            reply = await self._ask(
                reader, writer, {"op": "neighbors", "user": 1}
            )
            assert reply["ok"] is True

        self._run(index, scenario)

    def test_rebalance_op_on_flat_index_errors(self):
        dataset = random_dataset(
            n_users=12, n_items=10, density=0.2, seed=1, ratings=True
        )
        flat = DynamicKnnIndex(dataset, KiffConfig(k=3), auto_refresh=False)

        async def scenario(server, reader, writer):
            reply = await self._ask(
                reader, writer, {"op": "rebalance", "shards": 2}
            )
            assert reply["ok"] is False
            assert "not sharded" in reply["error"]

        try:
            self._run(flat, scenario)
        finally:
            flat.close()


@pytest.mark.skipif(sys.platform == "win32", reason="needs SIGKILL")
class TestSigkillMidMigrationHistory:
    """Real-crash drill through the example script, across a fence."""

    def run_example(self, state_dir, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        return subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "examples" / "streaming_updates.py"),
                "--state-dir",
                str(state_dir),
                "--checkpoint-every",
                "10",
                "--seed",
                "11",
                "--shards",
                "2",
                "--executor",
                "serial",
                "--rebalance-after",
                "20",
                "--rebalance-to",
                "3",
                *extra,
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_sigkill_after_rebalance_recovers_bit_identically(
        self, tmp_path
    ):
        killed_dir = tmp_path / "killed"
        proc = self.run_example(
            killed_dir, "--events", "60", "--kill-after", "37"
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        # Uninterrupted reference: same seed, stopped cleanly at event 37.
        ref_dir = tmp_path / "reference"
        proc = self.run_example(ref_dir, "--events", "37")
        assert proc.returncode == 0, proc.stderr
        restored = ShardedKnnIndex.restore(killed_dir)
        assert restored.n_shards == 3  # the replayed fence flipped it
        assert any(
            isinstance(event, MigrateCommit)
            for _, event in read_partitioned_wal(killed_dir)
        )
        assert restored.graph == load_graph(ref_dir / "final-graph.npz")
        restored.close()
