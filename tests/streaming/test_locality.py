"""Dirty-set locality of refresh(): counters, caches, reverse index.

The parity suite proves refreshes are *exact*; this file proves they are
*local* — snapshot rows, ProfileIndex recomputations and candidate-set
derivations all scale with the dirty set, the reverse-neighbor index
replaces the full-graph referencing scan, and both survive failures and
rebuilds.
"""

import numpy as np
import pytest

from repro import DynamicKnnIndex, KiffConfig
from repro.core.rcs import delta_rcs
from repro.streaming import (
    AddRating,
    RemoveUser,
    cold_rebuild_graph,
    ratings_batch,
)
from tests.conftest import random_dataset


def _index(n_users=120, n_items=80, density=0.05, seed=3, k=5, **kwargs):
    dataset = random_dataset(
        n_users=n_users, n_items=n_items, density=density, seed=seed, ratings=True
    )
    return DynamicKnnIndex(
        dataset, KiffConfig(k=k), auto_refresh=False, **kwargs
    )


class TestRefreshLocality:
    def test_snapshot_and_index_are_incremental(self):
        index = _index()
        index.apply(ratings_batch([7], [3], [4.0]))
        stats = index.refresh()
        assert index.maintenance.snapshots_incremental >= 1
        assert index.maintenance.index_updates_incremental >= 1
        # One dirty user: one row re-materialised, one user recomputed.
        assert stats.rows_materialized == 1
        assert stats.index_users_recomputed == 1

    def test_refresh_cost_tracks_dirty_set_not_population(self):
        """Doubling the population must not change the per-refresh row /
        index work of a single dirty user."""
        small = _index(n_users=60)
        large = _index(n_users=120)
        for index in (small, large):
            index.apply(ratings_batch([7], [3], [4.0]))
        stats_small = small.refresh()
        stats_large = large.refresh()
        assert stats_large.rows_materialized == stats_small.rows_materialized
        assert (
            stats_large.index_users_recomputed
            == stats_small.index_users_recomputed
        )

    def test_stats_expose_locality_fields(self):
        index = _index()
        index.apply(ratings_batch([0, 1], [2, 2], [3.0, 5.0]))
        stats = index.refresh()
        assert stats.rows_materialized == 2
        assert stats.index_users_recomputed == 2
        assert stats.cache_misses >= stats.cache_hits == 0
        assert index.refresh_log[-1] == stats


class TestCandidateCache:
    def test_repeat_dirty_user_hits_cache(self):
        index = _index()
        index.apply(ratings_batch([9], [4], [5.0]))
        first = index.refresh()
        assert first.cache_hits == 0
        assert first.cache_misses == first.affected_users
        index.apply(ratings_batch([9], [6], [2.0]))
        second = index.refresh()
        assert second.cache_hits >= 1  # user 9 and her repeat referencers

    def test_cached_multisets_stay_exact_under_foreign_events(self):
        """Other users' events must delta-update cached candidate sets
        (the reverse item-profile propagation), not leave them stale."""
        index = _index(n_users=40, n_items=20, density=0.15)
        index.apply(ratings_batch([0], [5], [4.0]))
        index.refresh()  # caches user 0's multiset
        # Foreign membership changes on items user 0 rates:
        items = list(index.builder.profile(0))
        index.apply(ratings_batch([1, 2], [items[0], items[0]], [3.0, 0.0]))
        index.apply(RemoveUser(3))
        index.refresh()
        snapshot = index.builder.snapshot()
        cached_users = sorted(index._candidate_counts)
        truth = delta_rcs(snapshot, cached_users, pivot=False)
        for user in cached_users:
            expected = dict(
                zip(
                    truth.candidates_of(user).tolist(),
                    (int(c) for c in truth.counts_of(user).tolist()),
                )
            )
            assert index._candidate_counts[user] == expected

    def test_cache_size_zero_disables_caching(self):
        index = _index(candidate_cache_size=0)
        index.apply(ratings_batch([9], [4], [5.0]))
        index.refresh()
        assert index._candidate_counts == {}
        assert index._cached_raters == {}
        index.apply(ratings_batch([9], [6], [2.0]))
        stats = index.refresh()
        assert stats.cache_hits == 0
        assert index.graph == cold_rebuild_graph(index.dataset, index.config)

    def test_cache_size_bound_is_respected(self):
        index = _index(candidate_cache_size=3)
        index.apply(ratings_batch([1, 2, 3, 4, 5], [0, 1, 2, 3, 4], [5.0] * 5))
        index.refresh()
        assert len(index._candidate_counts) <= 3
        assert index.graph == cold_rebuild_graph(index.dataset, index.config)

    def test_min_rating_qualifying_threshold_crossing(self):
        """A rating crossing min_rating flips candidacy without a
        membership change; cached sets must follow."""
        dataset = random_dataset(
            n_users=25, n_items=15, density=0.2, seed=8, ratings=True
        )
        index = DynamicKnnIndex(
            dataset, KiffConfig(k=4, min_rating=3.0), auto_refresh=False
        )
        index.apply(ratings_batch([0], [2], [5.0]))
        index.refresh()
        # 4.0 -> 1.0 -> 4.0 crossings on an existing edge:
        index.apply(ratings_batch([0], [2], [1.0]))
        index.refresh()
        index.apply(ratings_batch([0], [2], [4.0]))
        index.refresh()
        snapshot = index.builder.snapshot()
        cached_users = sorted(index._candidate_counts)
        truth = delta_rcs(snapshot, cached_users, pivot=False, min_rating=3.0)
        for user in cached_users:
            expected = dict(
                zip(
                    truth.candidates_of(user).tolist(),
                    (int(c) for c in truth.counts_of(user).tolist()),
                )
            )
            assert index._candidate_counts[user] == expected
        assert index.graph == cold_rebuild_graph(index.dataset, index.config)


class TestReverseIndex:
    def test_matches_isin_scan_after_stream(self):
        index = _index(n_users=30, n_items=18, density=0.15)
        rng = np.random.default_rng(4)
        for _ in range(25):
            index.apply(
                AddRating(
                    int(rng.integers(0, index.n_users)),
                    int(rng.integers(0, 20)),
                    float(rng.integers(0, 6)),
                )
            )
            if rng.random() < 0.4:
                index.refresh()
        index.refresh()
        neighbors, _ = index._rows()
        for user in range(index.n_users):
            scan = np.flatnonzero(np.isin(neighbors, [user]).any(axis=1))
            np.testing.assert_array_equal(
                index._reverse.referrers_of([user]), scan
            )

    def test_rebuild_restores_reverse_index(self):
        index = _index(n_users=30, n_items=18, density=0.15)
        index.apply(ratings_batch([0, 1], [2, 3], [4.0, 5.0]))
        index.rebuild()
        neighbors, _ = index._rows()
        for user in range(index.n_users):
            scan = np.flatnonzero(np.isin(neighbors, [user]).any(axis=1))
            np.testing.assert_array_equal(
                index._reverse.referrers_of([user]), scan
            )

    def test_failed_refresh_leaves_reverse_index_retryable(self, monkeypatch):
        """A mid-pass evaluation failure must leave the reverse index
        mirroring the (cleared) rows so the retry is exact."""
        index = _index(n_users=30, n_items=18, density=0.15)
        index.apply(ratings_batch([0], [3], [4.0]))
        original_batch = index.engine.batch

        def exploding_batch(us, vs):
            raise RuntimeError("metric blew up")

        monkeypatch.setattr(index.engine, "batch", exploding_batch)
        with pytest.raises(RuntimeError, match="blew up"):
            index.refresh()
        neighbors, _ = index._rows()
        for user in range(index.n_users):
            scan = np.flatnonzero(np.isin(neighbors, [user]).any(axis=1))
            np.testing.assert_array_equal(
                index._reverse.referrers_of([user]), scan
            )
        monkeypatch.setattr(index.engine, "batch", original_batch)
        index.refresh()
        assert index.graph == cold_rebuild_graph(index.dataset, index.config)
