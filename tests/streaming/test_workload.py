"""Burst workload generators: MMPP batch sizes and flash-crowd streams."""

import numpy as np
import pytest

from repro.streaming import flash_crowd_events, poisson_burst_sizes
from tests.conftest import random_dataset


class TestPoissonBurstSizes:
    def test_partitions_the_stream_exactly(self):
        sizes = poisson_burst_sizes(500, seed=3)
        assert sizes.sum() == 500
        assert sizes.dtype == np.int64
        assert (sizes >= 0).all()

    def test_deterministic_per_seed(self):
        assert np.array_equal(
            poisson_burst_sizes(200, seed=9), poisson_burst_sizes(200, seed=9)
        )
        assert not np.array_equal(
            poisson_burst_sizes(200, seed=9), poisson_burst_sizes(200, seed=10)
        )

    def test_bursty_not_uniform(self):
        """The whole point: heavy ticks AND idle lulls in one stream."""
        sizes = poisson_burst_sizes(
            2000, seed=0, base_rate=2.0, burst_rate=25.0
        )
        assert sizes.max() >= 15  # burst state reached
        assert (sizes == 0).any()  # idle ticks kept for wall budgets

    def test_zero_events(self):
        assert poisson_burst_sizes(0).sum() == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_events": -1},
            {"n_events": 10, "base_rate": 0.0},
            {"n_events": 10, "burst_rate": -1.0},
            {"n_events": 10, "p_enter": 1.5},
            {"n_events": 10, "p_exit": -0.1},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            poisson_burst_sizes(**kwargs)


class TestFlashCrowdEvents:
    @pytest.fixture
    def dataset(self):
        return random_dataset(
            n_users=30, n_items=20, density=0.2, seed=4, ratings=True
        )

    def test_hot_item_dominates(self, dataset):
        users, items, ratings = flash_crowd_events(
            dataset, 400, seed=1, hot_fraction=0.8
        )
        assert users.shape == items.shape == ratings.shape == (400,)
        hot_share = (items == dataset.n_items).mean()
        assert 0.7 < hot_share < 0.9  # ~hot_fraction lands on the hot item
        assert (users >= 0).all() and (users < dataset.n_users).all()
        assert set(np.unique(ratings)) <= {1.0, 2.0, 3.0, 4.0, 5.0}

    def test_default_hot_item_is_brand_new(self, dataset):
        _, items, _ = flash_crowd_events(dataset, 50, seed=2)
        assert items.max() == dataset.n_items  # cold-start goes viral

    def test_explicit_hot_item(self, dataset):
        _, items, _ = flash_crowd_events(
            dataset, 100, seed=2, hot_item=5, hot_fraction=1.0
        )
        assert (items == 5).all()

    def test_cold_tail_spreads_over_catalogue(self, dataset):
        _, items, _ = flash_crowd_events(
            dataset, 500, seed=3, hot_fraction=0.0
        )
        assert (items < dataset.n_items).all()
        assert np.unique(items).size > 10

    def test_deterministic_per_seed(self, dataset):
        first = flash_crowd_events(dataset, 100, seed=6)
        second = flash_crowd_events(dataset, 100, seed=6)
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize(
        "kwargs", [{"n_events": -5}, {"n_events": 10, "hot_fraction": 1.2}]
    )
    def test_rejects_bad_parameters(self, dataset, kwargs):
        with pytest.raises(ValueError):
            flash_crowd_events(dataset, **kwargs)
