"""Index lifecycle: close() is idempotent, defensive, and terminal.

The historical bugs this suite pins down: ``close()`` exploding on a
partially-constructed index (an ``__init__`` that raised before every
attribute existed), double-close raising, and post-close calls failing
deep inside pool internals instead of with a clear error.
"""

import pytest

from repro import AddRating, DynamicKnnIndex, KiffConfig, ShardedKnnIndex
from tests.conftest import random_dataset


def _dataset(seed=0):
    return random_dataset(
        n_users=14, n_items=10, density=0.2, seed=seed, ratings=True
    )


def _indexes():
    dataset = _dataset()
    config = KiffConfig(k=3)
    return [
        DynamicKnnIndex(dataset, config, auto_refresh=False),
        ShardedKnnIndex(
            dataset, config, auto_refresh=False, n_shards=2
        ),
        ShardedKnnIndex(
            dataset,
            config,
            auto_refresh=False,
            n_shards=2,
            executor="serial",
        ),
    ]


class TestIdempotent:
    def test_double_close_is_a_noop(self):
        for index in _indexes():
            index.close()
            index.close()
            assert index.closed

    def test_closed_property_tracks(self):
        for index in _indexes():
            assert not index.closed
            index.close()
            assert index.closed


class TestDefensive:
    @pytest.mark.parametrize("cls", [DynamicKnnIndex, ShardedKnnIndex])
    def test_close_safe_on_unconstructed_object(self, cls):
        """close() must not assume __init__ ran at all — an exception
        raised mid-construction still leaves a closeable object."""
        bare = cls.__new__(cls)
        bare.close()
        bare.close()
        assert bare.closed

    def test_close_safe_after_failed_init(self):
        """A constructor that raises on validation leaves no resources
        behind and close() stays callable."""
        with pytest.raises(ValueError):
            ShardedKnnIndex(
                _dataset(), KiffConfig(k=3), n_shards=2, executor="quantum"
            )

    def test_del_after_failed_construction_is_quiet(self):
        bare = ShardedKnnIndex.__new__(ShardedKnnIndex)
        del bare  # __del__ paths must tolerate missing attributes


class TestTerminal:
    @pytest.mark.parametrize("which", ["dynamic", "sharded"])
    def test_post_close_entry_points_raise(self, which):
        dataset = _dataset()
        if which == "dynamic":
            index = DynamicKnnIndex(
                dataset, KiffConfig(k=3), auto_refresh=False
            )
        else:
            index = ShardedKnnIndex(
                dataset, KiffConfig(k=3), auto_refresh=False, n_shards=2
            )
        index.close()
        with pytest.raises(RuntimeError, match="closed"):
            index.apply(AddRating(0, 1, 5.0))
        with pytest.raises(RuntimeError, match="closed"):
            index.refresh()
        with pytest.raises(RuntimeError, match="closed"):
            index.rebuild()
        with pytest.raises(RuntimeError, match="closed"):
            index.pin()

    def test_error_message_points_at_recovery(self):
        index = DynamicKnnIndex(
            _dataset(), KiffConfig(k=3), auto_refresh=False
        )
        index.close()
        with pytest.raises(RuntimeError, match="construct a new index"):
            index.refresh()

    def test_snapshot_is_released_on_close(self):
        """pin() refuses after close, but a snapshot pinned *before*
        the close stays readable — the pin outlives the index."""
        index = DynamicKnnIndex(
            _dataset(), KiffConfig(k=3), auto_refresh=False
        )
        snapshot = index.pin()
        graph = snapshot.graph()
        index.close()
        with pytest.raises(RuntimeError, match="closed"):
            index.pin()
        assert snapshot.graph() == graph
