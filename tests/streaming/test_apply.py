"""Unit tests for the typed-event ingestion API (DynamicKnnIndex.apply).

Parity semantics of each event kind live in ``test_parity.py`` (which
also exercises the deprecated wrappers); this file pins the apply()
contract itself: validation atomicity, Batch grouping, ApplyResult
structure, sequence numbering, and the deprecation shims.
"""

import pytest

from repro import DynamicKnnIndex, KiffConfig
from repro.datasets import DatasetError
from repro.streaming import (
    AddRating,
    AddUser,
    ApplyResult,
    Batch,
    RemoveRating,
    RemoveUser,
    apply_events,
    cold_rebuild_graph,
    ratings_batch,
)


def cold(index):
    return cold_rebuild_graph(index.dataset, index.config)


class TestApplyContract:
    def test_single_event_and_list(self, rated_dataset):
        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2))
        single = index.apply(AddRating(0, 3, 4.0))
        assert isinstance(single, ApplyResult)
        assert single.events == 1
        many = index.apply([AddRating(1, 3, 2.0), RemoveRating(0, 3)])
        assert many.events == 2
        assert index.graph == cold(index)

    def test_remove_rating_deletes_edge(self, rated_dataset):
        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2))
        index.apply(RemoveRating(0, 0))
        assert index.dataset.user_items(0).tolist() == [1, 2]
        assert index.graph == cold(index)
        # Deleting an absent edge is a free no-op (at-least-once safety).
        before = index.engine.counter.evaluations
        index.apply(RemoveRating(0, 0))
        assert index.engine.counter.evaluations == before

    def test_new_users_minted_in_order(self, toy_dataset):
        index = DynamicKnnIndex(toy_dataset, KiffConfig(k=3))
        result = index.apply([AddUser((0,)), AddUser((1,), (2.0,))])
        assert result.new_users == (4, 5)
        assert index.n_users == 6
        assert index.graph == cold(index)

    def test_sequence_numbers_without_wal(self, rated_dataset):
        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2))
        assert index.last_seq == 0
        assert index.apply(AddRating(0, 3, 4.0)).last_seq == 1
        assert index.apply(Batch((RemoveRating(0, 3), AddUser()))).last_seq == 3
        assert index.last_seq == 3

    def test_refreshes_collected(self, rated_dataset):
        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2))
        result = index.apply([AddRating(0, 3, 4.0), AddRating(1, 3, 2.0)])
        assert len(result.refreshes) == 2  # auto_refresh: one per event
        assert result.refreshes == tuple(index.refresh_log[-2:])
        deferred = DynamicKnnIndex(
            rated_dataset, KiffConfig(k=2), auto_refresh=False
        )
        assert deferred.apply([AddRating(0, 3, 4.0)]).refreshes == ()
        assert deferred.pending_events == 1

    def test_unknown_event_rejected(self, rated_dataset):
        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2))
        with pytest.raises(TypeError, match="unknown streaming event"):
            index.apply(("rate", 0, 1, 2.0))


class TestBatchSemantics:
    def test_batch_refreshes_once(self, rated_dataset):
        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2))
        result = index.apply(
            Batch((AddRating(0, 3, 4.0), AddRating(1, 3, 2.0), RemoveUser(2)))
        )
        assert result.events == 3
        assert len(result.refreshes) == 1
        assert result.refreshes[0].events == 3
        assert index.graph == cold(index)

    def test_nested_batches_flatten(self, rated_dataset):
        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2))
        result = index.apply(
            Batch((AddRating(0, 3, 4.0), Batch((AddRating(1, 3, 2.0),))))
        )
        assert result.events == 2
        assert len(result.refreshes) == 1
        assert index.graph == cold(index)

    def test_batch_may_reference_users_it_mints(self, toy_dataset):
        """Validation simulates population growth inside the batch."""
        index = DynamicKnnIndex(toy_dataset, KiffConfig(k=3))
        result = index.apply(
            Batch((AddUser((3,)), AddRating(4, 1, 5.0), RemoveUser(4)))
        )
        assert result.new_users == (4,)
        assert index.graph == cold(index)

    def test_bad_batch_applies_nothing(self, toy_dataset):
        """The whole batch validates before anything mutates."""
        index = DynamicKnnIndex(toy_dataset, KiffConfig(k=3))
        before = index.dataset
        for bad in (
            Batch((AddRating(0, 1, 3.0), AddRating(99, 1, 3.0))),
            Batch((AddRating(0, 1, 3.0), AddRating(1, -2, 3.0))),
            Batch((AddRating(0, 1, 3.0), AddRating(1, 1, float("nan")))),
            Batch((AddRating(0, 1, 3.0), RemoveUser(99))),
            Batch((AddRating(0, 1, 3.0), AddUser((0, 1), (1.0,)))),
            Batch((AddRating(0, 1, 3.0), AddUser((-1,)))),
            # The rated user would only exist if the AddUser came first.
            Batch((AddRating(4, 1, 3.0), AddUser((3,)))),
        ):
            with pytest.raises(DatasetError):
                index.apply(bad)
            assert index.pending_events == 0
            assert index.dirty_users == frozenset()
            assert index.last_seq == 0  # nothing journaled either
        assert index.dataset == before
        assert index.graph == cold(index)

    def test_ratings_batch_helper(self, rated_dataset):
        batch = ratings_batch([0, 1], [3, 3], [4.0, 2.0])
        assert batch == Batch((AddRating(0, 3, 4.0), AddRating(1, 3, 2.0)))
        assert ratings_batch([2], [0]).events == (AddRating(2, 0, 1.0),)
        with pytest.raises(ValueError, match="equal length"):
            ratings_batch([0, 1], [3])


class TestDeprecatedShims:
    def test_add_ratings_warns_and_delegates(self, rated_dataset):
        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2))
        with pytest.deprecated_call():
            index.add_ratings([0, 1], [3, 3], [4.0, 2.0])
        assert index.last_seq == 2
        assert index.graph == cold(index)

    def test_add_user_warns_and_returns_id(self, toy_dataset):
        index = DynamicKnnIndex(toy_dataset, KiffConfig(k=3))
        with pytest.deprecated_call():
            newcomer = index.add_user([3], [1.0])
        assert newcomer == 4
        assert index.graph == cold(index)

    def test_remove_user_warns_and_delegates(self, toy_dataset):
        index = DynamicKnnIndex(toy_dataset, KiffConfig(k=3))
        with pytest.deprecated_call():
            index.remove_user(3)
        assert index.graph.degree()[3] == 0
        assert index.graph == cold(index)

    def test_apply_events_returns_apply_result(self, toy_dataset):
        index = DynamicKnnIndex(toy_dataset, KiffConfig(k=3))
        with pytest.deprecated_call():
            result = apply_events(index, [AddUser((3,)), AddRating(0, 3)])
        assert isinstance(result, ApplyResult)
        assert result.new_users == (4,)
        assert index.graph == cold(index)


class TestDeprecationStacklevel:
    """Every shim must warn once per call, blaming the *caller's* line.

    A wrong ``stacklevel`` reports the warning against repro's own
    source, which makes ``-W error::DeprecationWarning`` migrations
    impossible to act on — so the reported filename is pinned to this
    test file for every shim and list-compat surface.
    """

    def assert_one_warning_here(self, record):
        assert len(record) == 1
        assert record[0].category is DeprecationWarning
        assert record[0].filename == __file__

    def test_add_ratings_blames_caller(self, rated_dataset):
        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2))
        with pytest.warns(DeprecationWarning) as record:
            index.add_ratings([0], [3], [4.0])
        self.assert_one_warning_here(record)

    def test_add_user_blames_caller(self, toy_dataset):
        index = DynamicKnnIndex(toy_dataset, KiffConfig(k=3))
        with pytest.warns(DeprecationWarning) as record:
            index.add_user([3], [1.0])
        self.assert_one_warning_here(record)

    def test_remove_user_blames_caller(self, toy_dataset):
        index = DynamicKnnIndex(toy_dataset, KiffConfig(k=3))
        with pytest.warns(DeprecationWarning) as record:
            index.remove_user(3)
        self.assert_one_warning_here(record)

    def test_apply_events_blames_caller(self, toy_dataset):
        index = DynamicKnnIndex(toy_dataset, KiffConfig(k=3))
        with pytest.warns(DeprecationWarning) as record:
            apply_events(index, [AddRating(0, 3, 1.0)])
        self.assert_one_warning_here(record)

    def test_list_compat_blames_caller(self):
        result = ApplyResult(new_users=(4,), refreshes=(), events=1, last_seq=1)
        with pytest.warns(DeprecationWarning) as record:
            list(result)
        self.assert_one_warning_here(record)
        with pytest.warns(DeprecationWarning) as record:
            len(result)
        self.assert_one_warning_here(record)
        with pytest.warns(DeprecationWarning) as record:
            result[0]
        self.assert_one_warning_here(record)
        with pytest.warns(DeprecationWarning) as record:
            result == [4]
        self.assert_one_warning_here(record)

    def test_sharded_shims_blame_caller(self, rated_dataset):
        """The shims inherited by ShardedKnnIndex keep the stacklevel."""
        from repro import ShardedKnnIndex

        index = ShardedKnnIndex(
            rated_dataset, KiffConfig(k=2), n_shards=2, executor="serial"
        )
        with pytest.warns(DeprecationWarning) as record:
            index.add_ratings([0], [3], [4.0])
        self.assert_one_warning_here(record)

    def test_default_filter_warns_once_per_call_site(self, rated_dataset):
        """With the default 'default' action, a loop over one call site
        surfaces a single warning — per-site, not per-call, noise."""
        import warnings

        index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2))
        with warnings.catch_warnings(record=True) as caught:
            warnings.resetwarnings()
            warnings.simplefilter("default")
            for rating in (1.0, 2.0, 3.0):
                index.add_ratings([0], [3], [rating])
        ours = [w for w in caught if w.category is DeprecationWarning]
        assert len(ours) == 1
        assert ours[0].filename == __file__


class TestApplyResultListCompat:
    """The historical apply_events contract was a list of minted ids."""

    def make(self):
        return ApplyResult(
            new_users=(4, 5), refreshes=(), events=3, last_seq=3
        )

    def test_iteration_warns_and_yields_ids(self):
        with pytest.deprecated_call():
            assert [user for user in self.make()] == [4, 5]

    def test_len_and_getitem_warn(self):
        result = self.make()
        with pytest.deprecated_call():
            assert len(result) == 2
        with pytest.deprecated_call():
            assert result[0] == 4
        with pytest.deprecated_call():
            assert result[-1] == 5

    def test_list_equality_warns(self):
        with pytest.deprecated_call():
            assert self.make() == [4, 5]

    def test_structured_equality_does_not_warn(self, recwarn):
        assert self.make() == self.make()
        assert self.make() != ApplyResult((4,), (), 1, 1)
        assert not (self.make() == "not a result")
        assert not recwarn.list

    def test_new_users_access_does_not_warn(self, recwarn):
        assert self.make().new_users == (4, 5)
        assert not recwarn.list

    def test_hashable_like_any_frozen_dataclass(self, recwarn):
        assert hash(self.make()) == hash(self.make())
        assert len({self.make(), self.make()}) == 1
        assert not recwarn.list
