"""Integration tests: every experiment module runs at tiny scale and its
report carries the paper's qualitative shape."""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, ExperimentContext


@pytest.fixture(scope="module")
def context():
    """One shared cache for the whole experiment test module."""
    return ExperimentContext(scale="tiny")


class TestAllExperimentsRun:
    @pytest.mark.parametrize("name", sorted(EXPERIMENTS))
    def test_runs_and_renders(self, context, name):
        report = EXPERIMENTS[name].run(context)
        rendered = report.render()
        assert report.experiment
        assert report.rows, f"{name} produced no rows"
        assert rendered.count("\n") >= 2


class TestPaperShapes:
    """The qualitative claims each table/figure makes must hold."""

    def test_table1_density_ordering(self, context):
        report = EXPERIMENTS["table1"].run(context)
        stats = report.data
        assert stats["wikipedia"].density_percent > stats["gowalla"].density_percent

    def test_table2_kiff_wins_recall(self, context):
        report = EXPERIMENTS["table2"].run(context)
        for name in context.suite():
            outcomes = {o.algorithm: o for o in report.data[name]}
            assert outcomes["kiff"].recall >= outcomes["nn-descent"].recall - 0.02
            assert outcomes["kiff"].recall >= outcomes["hyrec"].recall - 0.02

    def test_table2_kiff_lowest_scan_rate(self, context):
        report = EXPERIMENTS["table2"].run(context)
        for name in context.suite():
            outcomes = {o.algorithm: o for o in report.data[name]}
            assert outcomes["kiff"].scan_rate < outcomes["nn-descent"].scan_rate
            assert outcomes["kiff"].scan_rate < outcomes["hyrec"].scan_rate

    def test_table3_positive_speedup(self, context):
        report = EXPERIMENTS["table3"].run(context)
        assert report.data["average"]["speedup"] > 1.0

    def test_table4_item_profiles_are_cheap(self, context):
        report = EXPERIMENTS["table4"].run(context)
        for name in context.suite():
            assert report.data[name]["pct_total"] < 10.0

    def test_table5_actual_scan_close_to_max(self, context):
        report = EXPERIMENTS["table5"].run(context)
        for name in context.suite():
            entry = report.data[name]
            assert entry["actual_scan"] <= entry["max_scan"] + 1e-9
            assert entry["actual_scan"] >= 0.5 * entry["max_scan"]

    def test_table6_cut_is_iters_times_gamma(self, context):
        report = EXPERIMENTS["table6"].run(context)
        table2 = EXPERIMENTS["table2"].run(context)
        for name in context.suite():
            kiff_run = next(
                o for o in table2.data[name] if o.algorithm == "kiff"
            )
            expected = int(kiff_run.iterations * kiff_run.result.extras["gamma"])
            assert report.data[name]["rcs_cut"] == expected

    def test_table7_rcs_init_beats_random(self, context):
        report = EXPERIMENTS["table7"].run(context)
        for name in context.suite():
            entry = report.data[name]
            assert entry["rcs_init"] > entry["random_init"]

    def test_table8_kiff_recall_stable(self, context):
        report = EXPERIMENTS["table8"].run(context)
        for name in context.suite():
            entry = report.data[f"{name}/kiff"]
            assert abs(entry["delta_recall"]) < 0.12

    def test_table9_density_and_rcs_shrink_together(self, context):
        report = EXPERIMENTS["table9"].run(context)
        entries = [report.data[f"ml-{i}"] for i in range(1, 6)]
        densities = [e["density_percent"] for e in entries]
        rcs = [e["avg_rcs"] for e in entries]
        assert all(a > b for a, b in zip(densities, densities[1:]))
        assert all(a >= b for a, b in zip(rcs, rcs[1:]))

    def test_figure1_similarity_is_measured(self, context):
        report = EXPERIMENTS["figure1"].run(context)
        for algorithm in ("nn-descent", "hyrec"):
            assert report.data[algorithm]["similarity"] > 0

    def test_figure4_tails_are_long(self, context):
        report = EXPERIMENTS["figure4"].run(context)
        for name in context.suite():
            xs, ps = report.data[f"{name}/user"]
            assert ps[0] == 1.0
            assert np.all(np.diff(ps) <= 0)

    def test_figure5_kiff_preprocessing_share_highest(self, context):
        report = EXPERIMENTS["figure5"].run(context)
        for name in context.suite():
            kiff_pre = report.data[f"{name}/kiff"]["preprocessing"]
            nnd_pre = report.data[f"{name}/nn-descent"]["preprocessing"]
            assert kiff_pre >= nnd_pre

    def test_figure6_ccdf_valid(self, context):
        report = EXPERIMENTS["figure6"].run(context)
        for name in context.suite():
            xs, ps = report.data[name]["ccdf"]
            assert np.all(np.diff(ps) <= 0)
            assert report.data[name]["cut"] > 0

    def test_figure7_positive_correlation(self, context):
        report = EXPERIMENTS["figure7"].run(context)
        for metric in ("cosine", "jaccard"):
            rhos = [rho for (_, _, rho) in report.data[metric]]
            assert rhos, f"no correlation points for {metric}"
            assert np.mean(rhos) > 0.2

    def test_figure8_kiff_starts_high_ends_cheap(self, context):
        report = EXPERIMENTS["figure8"].run(context)
        kiff_series = report.data["kiff"]
        nnd_series = report.data["nn-descent"]
        # KIFF's first-iteration recall beats the baselines' start.
        assert kiff_series["recall"][0] > nnd_series["recall"][0]
        # And its final scan rate is lower.
        assert kiff_series["scan_rate"][-1] < nnd_series["scan_rate"][-1]

    def test_figure9_gamma_sweep_recall_stable(self, context):
        report = EXPERIMENTS["figure9"].run(context)
        for name in context.suite():
            recalls = [p["recall"] for p in report.data[name]]
            assert max(recalls) - min(recalls) < 0.1

    def test_figure10_kiff_scan_rate_falls_with_density(self, context):
        report = EXPERIMENTS["figure10"].run(context)
        scans = [report.data[f"ml-{i}"]["kiff"].scan_rate for i in range(1, 6)]
        assert scans[0] > scans[-1]

    def test_figure10_recalls_matched(self, context):
        """Beta matching reaches NN-Descent's recall wherever candidate
        pools support it (avg |RCS| above k, the paper's regime)."""
        report = EXPERIMENTS["figure10"].run(context)
        table9 = EXPERIMENTS["table9"].run(context)
        k = context.k_for("ml-1")
        for i in range(1, 6):
            if table9.data[f"ml-{i}"]["avg_rcs"] < 2 * k:
                continue  # tiny-scale member outside the paper's regime
            entry = report.data[f"ml-{i}"]
            assert entry["kiff"].recall >= entry["nnd"].recall - 0.06

    def test_beta_tradeoff_direction(self, context):
        report = EXPERIMENTS["beta"].run(context)
        loose = report.data[0.1]
        tight = report.data[0.001]
        assert loose.scan_rate <= tight.scan_rate + 1e-9
        assert loose.recall >= tight.recall - 0.05

    def test_ablation_rcs_paths_identical(self, context):
        report = EXPERIMENTS["ablation"].run(context)
        assert report.data["rcs_path"]["identical"]

    def test_ablation_pivot_memory_doubles(self, context):
        report = EXPERIMENTS["ablation"].run(context)
        assert report.data["pivot"]["memory_ratio"] == pytest.approx(2.0)

    def test_ablation_min_rating_shrinks_rcs(self, context):
        report = EXPERIMENTS["ablation"].run(context)
        assert report.data["min_rating"]["rcs_shrinkage"] > 0
