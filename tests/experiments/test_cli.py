"""Unit tests for the CLI."""

import json
import os
import re
import signal
import socket
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import build_parser, main


class TestParser:
    def test_experiment_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tableXL"])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.scale == "laptop"
        assert args.metric == "cosine"
        assert args.seed == 0

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "galactic"])


class TestMain:
    def test_runs_single_experiment(self, capsys):
        assert main(["table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "regenerated" in out

    def test_runs_figure(self, capsys):
        assert main(["figure4", "--scale", "tiny"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_metric_forwarded(self, capsys):
        assert main(["table1", "--scale", "tiny", "--metric", "jaccard"]) == 0


class TestStreamCommand:
    def test_stream_command_reports_parity(self, capsys):
        assert main(["stream", "--scale", "tiny", "--batch-size", "25"]) == 0
        out = capsys.readouterr().out
        assert "events streamed" in out
        assert "savings" in out
        parity_line = next(
            line for line in out.splitlines() if "parity" in line
        )
        assert "True" in parity_line

    def test_stream_fraction_validated_by_parser(self, capsys):
        """Bad fractions are an argparse usage error, not a traceback."""
        with pytest.raises(SystemExit):
            main(["stream", "--scale", "tiny", "--stream-fraction", "1.5"])
        assert "between 0 and 1" in capsys.readouterr().err

    def test_stream_with_wal_writes_durable_state(self, capsys, tmp_path):
        wal_path = tmp_path / "wal.jsonl"
        assert (
            main(
                [
                    "stream",
                    "--scale",
                    "tiny",
                    "--batch-size",
                    "50",
                    "--wal",
                    str(wal_path),
                    "--checkpoint-every",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wal" in out
        assert wal_path.exists()
        assert list(tmp_path.glob("checkpoint-*.npz"))

    def test_checkpoint_every_requires_wal(self, capsys):
        argv = ["stream", "--scale", "tiny", "--checkpoint-every", "5"]
        assert main(argv) == 2
        assert "--wal" in capsys.readouterr().err

    def test_checkpoint_every_zero_is_a_usage_error(self, capsys, tmp_path):
        """--checkpoint-every 0 must be a one-line exit-2 message, not a
        ValueError traceback from replay_stream."""
        assert (
            main(
                [
                    "stream",
                    "--scale",
                    "tiny",
                    "--wal",
                    str(tmp_path / "wal.jsonl"),
                    "--checkpoint-every",
                    "0",
                ]
            )
            == 2
        )
        assert "positive" in capsys.readouterr().err

    def test_shards_must_be_positive(self, capsys):
        assert main(["stream", "--scale", "tiny", "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_reused_wal_path_is_a_usage_error(self, capsys, tmp_path):
        """Re-streaming onto a log that already holds events must be a
        friendly exit-2 error, not a PersistenceError traceback."""
        argv = [
            "stream",
            "--scale",
            "tiny",
            "--batch-size",
            "50",
            "--wal",
            str(tmp_path / "wal.jsonl"),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 2
        assert "already holds events" in capsys.readouterr().err


class TestRecoverCommand:
    def test_recover_round_trip(self, capsys, tmp_path):
        """stream --wal then recover --verify: exact parity, exit 0."""
        assert (
            main(
                [
                    "stream",
                    "--scale",
                    "tiny",
                    "--batch-size",
                    "50",
                    "--wal",
                    str(tmp_path / "wal.jsonl"),
                    "--checkpoint-every",
                    "2",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["recover", str(tmp_path), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "checkpoint" in out
        assert "wal events replayed" in out
        parity_line = next(
            line for line in out.splitlines() if "parity" in line
        )
        assert "True" in parity_line

    def test_recover_requires_directory(self, capsys):
        assert main(["recover"]) == 2
        assert "state directory" in capsys.readouterr().err

    def test_recover_empty_directory_is_a_usage_error(self, capsys, tmp_path):
        """An empty state dir exits 2 with one actionable line — no
        CheckpointError traceback."""
        assert main(["recover", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "no recoverable streaming state" in err
        assert "repro-kiff stream" in err

    def test_recover_missing_directory_is_a_usage_error(
        self, capsys, tmp_path
    ):
        assert main(["recover", str(tmp_path / "nowhere")]) == 2
        assert "missing" in capsys.readouterr().err

    def test_recover_unrecognized_files_not_called_empty(
        self, capsys, tmp_path
    ):
        """A dir holding only unusable leftovers (rotated logs, typos)
        must not be reported as empty — the files exist, the naming is
        the problem."""
        (tmp_path / "wal.jsonl.superseded-12").write_text("{}")
        (tmp_path / "wal.json").write_text("{}")
        assert main(["recover", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "no recoverable streaming state" in err
        assert "empty" not in err


class TestShardedStream:
    def test_sharded_stream_reports_parity(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--scale",
                    "tiny",
                    "--batch-size",
                    "50",
                    "--shards",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ShardedKnnIndex" in out
        shards_line = next(
            line for line in out.splitlines() if "shards" in line
        )
        assert shards_line.strip().endswith("2")
        parity_line = next(
            line for line in out.splitlines() if "parity" in line
        )
        assert "True" in parity_line

    def test_sharded_stream_recover_round_trip(self, capsys, tmp_path):
        """stream --shards --wal writes the partitioned layout, and
        recover --verify restores it with exact parity."""
        assert (
            main(
                [
                    "stream",
                    "--scale",
                    "tiny",
                    "--batch-size",
                    "50",
                    "--shards",
                    "2",
                    "--wal",
                    str(tmp_path),
                    "--checkpoint-every",
                    "2",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (tmp_path / "wal-0.jsonl").exists()
        assert (tmp_path / "wal-1.jsonl").exists()
        assert list(tmp_path.glob("checkpoint-*.shards"))
        assert main(["recover", str(tmp_path), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "ShardedKnnIndex" in out
        assert "sharded" in out
        parity_line = next(
            line for line in out.splitlines() if "parity" in line
        )
        assert "True" in parity_line

    def test_reused_sharded_state_is_a_usage_error(self, capsys, tmp_path):
        argv = [
            "stream",
            "--scale",
            "tiny",
            "--batch-size",
            "50",
            "--shards",
            "2",
            "--wal",
            str(tmp_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 2
        assert "already holds events" in capsys.readouterr().err


def _orphan_shard_segments() -> list[str]:
    """Shard shared-memory segments still linked in /dev/shm."""
    shm = Path("/dev/shm")
    if not shm.is_dir():  # non-Linux: nothing to observe
        return []
    return [entry.name for entry in shm.glob("*repro-shard*")]


class TestStreamCleanup:
    """A mid-stream failure must not leak the worker pool or /dev/shm.

    The historical bug: ``repro stream --executor processes`` built the
    sharded index, and an exception raised while streaming escaped
    without ``close()`` — orphaning one OS worker per shard and their
    shared-memory arena until interpreter exit (or forever, for the
    segments, on an unclean exit)."""

    @pytest.mark.parametrize(
        "error_type", [RuntimeError, KeyboardInterrupt]
    )
    def test_mid_stream_failure_releases_pool_and_shm(
        self, monkeypatch, error_type
    ):
        from repro.streaming import ratings_batch
        from tests.streaming.test_process_executor import wait_dead

        seen = {}

        def exploding_replay(index, users, items, ratings, **kwargs):
            # Stream one real batch so the process pool and shared
            # memory arena actually spawn, then die mid-stream.
            index.apply(ratings_batch(users[:20], items[:20], ratings[:20]))
            index.refresh()
            seen["pids"] = list(index._procpool.pids)
            seen["arena"] = index._arena.name
            raise error_type("mid-stream failure")

        monkeypatch.setattr(
            "repro.streaming.replay_stream", exploding_replay
        )
        with pytest.raises(error_type, match="mid-stream failure"):
            main(
                [
                    "stream",
                    "--scale",
                    "tiny",
                    "--shards",
                    "2",
                    "--executor",
                    "processes",
                ]
            )
        assert seen["pids"], "the worker pool never spawned"
        for pid in seen["pids"]:
            wait_dead(pid)
        assert not _orphan_shard_segments()

    def test_clean_stream_leaves_no_segments(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--scale",
                    "tiny",
                    "--batch-size",
                    "50",
                    "--shards",
                    "2",
                    "--executor",
                    "processes",
                ]
            )
            == 0
        )
        assert not _orphan_shard_segments()


class TestServeCommand:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.duration is None
        assert args.serve_events == 0

    def test_serve_shards_validated(self, capsys):
        assert main(["serve", "--scale", "tiny", "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_serve_smoke_over_tcp(self):
        """End to end in a subprocess: bind an ephemeral port, answer a
        mixed query batch while the writer streams events, exit 0 and
        close the index on SIGTERM."""
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--scale",
                "tiny",
                "--port",
                "0",
                "--duration",
                "60",
                "--serve-events",
                "24",
                "--batch-size",
                "8",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"on ([\d.]+):(\d+)", banner)
            assert match, f"no address banner in {banner!r}"
            host, port = match.group(1), int(match.group(2))
            with socket.create_connection((host, port), timeout=10) as conn:
                conn.sendall(
                    b'{"op": "neighbors", "user": 0}\n'
                    b'{"op": "recommend", "user": 1}\n'
                    b'{"op": "stats"}\n'
                    b'{"op": "bogus"}\n'
                )
                with conn.makefile("r") as stream:
                    replies = [json.loads(stream.readline()) for _ in range(4)]
            assert [r["ok"] for r in replies] == [True, True, True, False]
            assert replies[0]["version"] == replies[1]["version"]
            assert "unknown op" in replies[3]["error"]
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        tail = proc.stdout.read()
        assert "served" in tail
        assert "index closed" in tail


class TestUtilityCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "wikipedia" in out
        assert "ml-5" in out

    def test_datasets_command_saves_edge_lists(self, capsys, tmp_path):
        assert (
            main(["datasets", "--scale", "tiny", "--save-dir", str(tmp_path)])
            == 0
        )
        assert (tmp_path / "wikipedia.edges").exists()
        assert (tmp_path / "wikipedia.meta.json").exists()
        # Saved datasets reload identically.
        from repro.datasets import load_dataset, load_dataset_dir

        reloaded = load_dataset_dir(tmp_path, "wikipedia")
        assert reloaded == load_dataset("wikipedia", scale="tiny")

    def test_graph_stats_command(self, capsys):
        argv = ["graph-stats", "--scale", "tiny", "--dataset", "arxiv"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "reciprocity" in out
        assert "scan rate" in out

    def test_graph_stats_custom_k(self, capsys):
        assert (
            main(
                [
                    "graph-stats",
                    "--scale",
                    "tiny",
                    "--dataset",
                    "wikipedia",
                    "--k",
                    "5",
                ]
            )
            == 0
        )
        assert "k=5" in capsys.readouterr().out
