"""Unit tests for report rendering."""

import pytest

from repro.experiments.report import ExperimentReport, format_value, render_table


class TestFormatValue:
    def test_ints_get_thousands_separators(self):
        assert format_value(1234567) == "1,234,567"

    def test_small_floats_trimmed(self):
        assert format_value(0.5) == "0.5"
        assert format_value(0.125) == "0.125"

    def test_large_floats_compact(self):
        assert format_value(12345.6) == "12,346"
        assert format_value(123.45) == "123.5"

    def test_nan_renders_dash(self):
        assert format_value(float("nan")) == "-"

    def test_strings_pass_through(self):
        assert format_value("kiff") == "kiff"

    def test_bool_not_treated_as_int(self):
        assert format_value(True) == "True"


class TestRenderTable:
    def test_columns_aligned(self):
        out = render_table(["a", "bb"], [["x", 1], ["yyyy", 22]])
        data_lines = [l for l in out.splitlines() if " | " in l]
        assert len(data_lines) == 3
        assert len({line.index(" | ") for line in data_lines}) == 1

    def test_title_included(self):
        out = render_table(["a"], [["x"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestExperimentReport:
    def test_render_contains_everything(self):
        report = ExperimentReport(
            experiment="Table X",
            title="Things",
            headers=["col"],
            rows=[["val"]],
            notes="a note",
        )
        rendered = report.render()
        assert "Table X: Things" in rendered
        assert "val" in rendered
        assert "a note" in rendered

    def test_str_is_render(self):
        report = ExperimentReport("T", "t", ["h"], [["v"]])
        assert str(report) == report.render()
