"""Unit tests for the experiment harness and its caching."""

import pytest

from repro.experiments.harness import (
    ALGORITHMS,
    ExperimentContext,
    default_k,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(scale="tiny")


class TestDefaultK:
    def test_paper_defaults(self):
        assert default_k("wikipedia") == 20
        assert default_k("dblp") == 50

    def test_reduced_defaults(self):
        assert default_k("wikipedia", reduced=True) == 10
        assert default_k("dblp", reduced=True) == 20


class TestContext:
    def test_dataset_cached(self, context):
        assert context.dataset("wikipedia") is context.dataset("wikipedia")

    def test_engines_are_fresh(self, context):
        assert context.engine("wikipedia") is not context.engine("wikipedia")

    def test_exact_graph_cached(self, context):
        assert context.exact("wikipedia", 5) is context.exact("wikipedia", 5)

    def test_exact_graph_distinct_per_k(self, context):
        assert context.exact("wikipedia", 5) is not context.exact("wikipedia", 6)

    def test_run_cached_by_params(self, context):
        a = context.run("wikipedia", "kiff", k=5)
        b = context.run("wikipedia", "kiff", k=5)
        assert a is b
        c = context.run("wikipedia", "kiff", k=5, beta=0.5)
        assert c is not a

    def test_run_cache_bypass(self, context):
        a = context.run("wikipedia", "kiff", k=5)
        b = context.run("wikipedia", "kiff", k=5, cache=False)
        assert a is not b
        assert a.recall == pytest.approx(b.recall)

    def test_run_all_covers_paper_algorithms(self, context):
        outcomes = context.run_all("wikipedia", k=5)
        assert [o.algorithm for o in outcomes] == list(ALGORITHMS)

    def test_unknown_algorithm_raises(self, context):
        with pytest.raises(ValueError, match="unknown algorithm"):
            context.run("wikipedia", "simhash", k=5)

    def test_outcome_fields(self, context):
        outcome = context.run("wikipedia", "kiff", k=5)
        assert 0.0 <= outcome.recall <= 1.0
        assert outcome.scan_rate > 0
        assert outcome.wall_time > 0
        assert outcome.iterations >= 1
        assert set(outcome.breakdown) == {
            "preprocessing",
            "candidate_selection",
            "similarity",
        }

    def test_brute_force_dispatch(self, context):
        outcome = context.run("wikipedia", "brute-force", k=5)
        assert outcome.recall == pytest.approx(1.0)

    def test_add_dataset(self, context):
        from tests.conftest import random_dataset

        ds = random_dataset(seed=42)
        context.add_dataset(ds)
        assert context.dataset(ds.name) is ds
