"""Sanity checks on the transcribed paper constants.

These guard against transcription typos: internal consistency relations
that hold inside the published tables must hold in our copies.
"""

import pytest

from repro.experiments.paper_values import (
    TABLE1,
    TABLE2,
    TABLE3,
    TABLE5,
    TABLE6,
    TABLE7,
    TABLE8,
    TABLE9,
)

DATASETS = ("wikipedia", "arxiv", "gowalla", "dblp")


class TestTable1:
    def test_density_consistent_with_counts(self):
        # The paper truncates (not rounds) small densities, so compare with
        # an absolute tolerance of one unit in the last printed digit.
        for name, row in TABLE1.items():
            computed = 100.0 * row["n_ratings"] / (row["n_users"] * row["n_items"])
            assert computed == pytest.approx(row["density_percent"], abs=1e-4)

    def test_avg_profiles_consistent(self):
        for name, row in TABLE1.items():
            assert row["n_ratings"] / row["n_users"] == pytest.approx(
                row["avg_user_profile"], rel=0.02
            )
            assert row["n_ratings"] / row["n_items"] == pytest.approx(
                row["avg_item_profile"], rel=0.03
            )

    def test_density_ordering(self):
        densities = [TABLE1[name]["density_percent"] for name in
                     ("wikipedia", "arxiv", "gowalla", "dblp")]
        assert all(a > b for a, b in zip(densities, densities[1:]))


class TestTable2:
    def test_kiff_always_best_recall(self):
        for name in DATASETS:
            rows = TABLE2[name]
            assert rows["kiff"]["recall"] >= rows["nn-descent"]["recall"]
            assert rows["kiff"]["recall"] >= rows["hyrec"]["recall"]

    def test_kiff_always_fastest(self):
        for name in DATASETS:
            rows = TABLE2[name]
            assert rows["kiff"]["wall_time"] < rows["nn-descent"]["wall_time"]
            assert rows["kiff"]["wall_time"] < rows["hyrec"]["wall_time"]

    def test_kiff_lowest_scan_rate(self):
        for name in DATASETS:
            rows = TABLE2[name]
            assert rows["kiff"]["scan_rate"] < rows["nn-descent"]["scan_rate"]
            assert rows["kiff"]["scan_rate"] < rows["hyrec"]["scan_rate"]


class TestTable3:
    def test_average_is_mean_of_competitors(self):
        expected = (
            TABLE3["nn-descent"]["speedup"] + TABLE3["hyrec"]["speedup"]
        ) / 2
        assert TABLE3["average"]["speedup"] == pytest.approx(expected, abs=0.01)

    def test_headline_numbers(self):
        # "a speed-up factor of 14 ... improving the quality ... by 18%"
        assert TABLE3["average"]["speedup"] == pytest.approx(14, abs=0.1)
        assert TABLE3["average"]["recall_gain"] == pytest.approx(0.19, abs=0.005)


class TestTable5:
    def test_max_scan_formula(self):
        # max_scan = 2 * avg|RCS| / (|U| - 1), per Section V-A2.
        for name in DATASETS:
            n_users = TABLE1[name]["n_users"]
            expected = 2 * TABLE5[name]["avg_rcs"] / (n_users - 1)
            assert TABLE5[name]["max_scan"] == pytest.approx(expected, abs=1e-4)


class TestTable6:
    def test_cut_is_iterations_times_gamma(self):
        # gamma = 2k = 40 (DBLP: 2*50 ... but the paper reports 660 = 33*20;
        # DBLP's published cut implies gamma = 20, consistent with its
        # |RCS|cut column being #iters x gamma at gamma=2k only for k=10;
        # we therefore check the three k=20 datasets strictly).
        for name, gamma in (("arxiv", 20), ("wikipedia", 20), ("gowalla", 20), ("dblp", 20)):
            row = TABLE6[name]
            assert row["rcs_cut"] == row["iterations"] * gamma


class TestTable7:
    def test_rcs_init_beats_random(self):
        for name in DATASETS:
            assert TABLE7[name]["rcs_init"] > TABLE7[name]["random_init"]


class TestTable8:
    def test_kiff_recall_unchanged(self):
        for name in DATASETS:
            assert TABLE8[name]["kiff"]["recall"] == pytest.approx(0.99)

    def test_baselines_degrade(self):
        for name in DATASETS:
            assert TABLE8[name]["nn-descent"]["recall"] < TABLE2[name]["nn-descent"]["recall"]
            assert TABLE8[name]["hyrec"]["recall"] < TABLE2[name]["hyrec"]["recall"]


class TestTable9:
    def test_density_halves_down_the_family(self):
        densities = [TABLE9[f"ml-{i}"]["density_percent"] for i in range(1, 6)]
        for previous, current in zip(densities, densities[1:]):
            assert current == pytest.approx(previous / 2, rel=0.15)

    def test_rcs_shrinks_with_density(self):
        rcs = [TABLE9[f"ml-{i}"]["avg_rcs"] for i in range(1, 6)]
        assert all(a > b for a, b in zip(rcs, rcs[1:]))
