"""Unit tests for Spearman correlation analysis (Figure 7 machinery)."""

import numpy as np
import pytest

from repro.analysis.spearman import (
    rcs_metric_correlations,
    spearman_rank_correlation,
)
from repro.core.rcs import build_rcs
from repro.similarity import SimilarityEngine


class TestSpearman:
    def test_perfect_agreement(self):
        assert spearman_rank_correlation(
            np.array([1, 2, 3, 4]), np.array([10, 20, 30, 40])
        ) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert spearman_rank_correlation(
            np.array([1, 2, 3, 4]), np.array([4, 3, 2, 1])
        ) == pytest.approx(-1.0)

    def test_constant_vector_returns_one(self):
        assert spearman_rank_correlation(
            np.array([5, 5, 5]), np.array([1, 2, 3])
        ) == 1.0

    def test_short_vectors_return_one(self):
        assert spearman_rank_correlation(np.array([1.0]), np.array([2.0])) == 1.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation(np.array([1, 2]), np.array([1]))

    def test_bounded(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            rho = spearman_rank_correlation(rng.random(30), rng.random(30))
            assert -1.0 <= rho <= 1.0


class TestRcsMetricCorrelations:
    def test_returns_qualifying_users(self, tiny_wikipedia):
        engine = SimilarityEngine(tiny_wikipedia)
        rcs = build_rcs(tiny_wikipedia)
        sizes = rcs.sizes()
        threshold = int(np.quantile(sizes[sizes > 0], 0.8))
        points = rcs_metric_correlations(engine, rcs, min_size=threshold)
        expected = int((sizes >= threshold).sum())
        assert len(points) == expected
        for user, size, rho in points:
            assert sizes[user] == size
            assert -1.0 <= rho <= 1.0

    def test_max_users_limits_output(self, tiny_wikipedia):
        engine = SimilarityEngine(tiny_wikipedia)
        rcs = build_rcs(tiny_wikipedia)
        points = rcs_metric_correlations(engine, rcs, min_size=1, max_users=5)
        assert len(points) == 5

    def test_stripped_rcs_raises(self, tiny_wikipedia):
        engine = SimilarityEngine(tiny_wikipedia)
        rcs = build_rcs(tiny_wikipedia, strip=True)
        with pytest.raises(ValueError, match="strip"):
            rcs_metric_correlations(engine, rcs, min_size=1)

    def test_overlap_metric_correlates_perfectly_with_counts(
        self, tiny_wikipedia
    ):
        """RCS order *is* overlap order, so rho with overlap must be 1."""
        engine = SimilarityEngine(tiny_wikipedia, metric="overlap")
        rcs = build_rcs(tiny_wikipedia)
        points = rcs_metric_correlations(engine, rcs, min_size=3, max_users=20)
        assert points, "need at least one user with an RCS of size >= 3"
        for _, _, rho in points:
            assert rho == pytest.approx(1.0)

    def test_positive_correlation_with_cosine(self, tiny_wikipedia):
        """The paper's core claim behind truncation: counting-phase order
        is a good proxy for the true metric order."""
        engine = SimilarityEngine(tiny_wikipedia)
        rcs = build_rcs(tiny_wikipedia)
        sizes = rcs.sizes()
        threshold = max(int(np.quantile(sizes[sizes > 0], 0.9)), 5)
        points = rcs_metric_correlations(engine, rcs, min_size=threshold)
        rhos = [rho for (_, _, rho) in points]
        assert np.mean(rhos) > 0.3
