"""Unit tests for CCDF computation."""

import numpy as np
import pytest

from repro.analysis.ccdf import ccdf, ccdf_at


class TestCcdf:
    def test_simple_distribution(self):
        xs, ps = ccdf(np.array([1, 1, 2, 3]))
        assert xs.tolist() == [1, 2, 3]
        np.testing.assert_allclose(ps, [1.0, 0.5, 0.25])

    def test_single_value(self):
        xs, ps = ccdf(np.array([7, 7, 7]))
        assert xs.tolist() == [7]
        assert ps.tolist() == [1.0]

    def test_first_probability_is_one(self):
        rng = np.random.default_rng(0)
        _, ps = ccdf(rng.integers(0, 100, size=500))
        assert ps[0] == 1.0

    def test_monotone_nonincreasing(self):
        rng = np.random.default_rng(1)
        _, ps = ccdf(rng.geometric(0.3, size=1000))
        assert np.all(np.diff(ps) <= 0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ccdf(np.array([]))

    def test_float_values(self):
        xs, ps = ccdf(np.array([0.5, 1.5, 1.5]))
        assert xs.tolist() == [0.5, 1.5]
        np.testing.assert_allclose(ps, [1.0, 2 / 3])


class TestCcdfAt:
    def test_threshold_inclusive(self):
        values = np.array([1, 2, 3, 4])
        assert ccdf_at(values, 3) == pytest.approx(0.5)

    def test_below_min_is_one(self):
        assert ccdf_at(np.array([5, 6]), 0) == 1.0

    def test_above_max_is_zero(self):
        assert ccdf_at(np.array([5, 6]), 100) == 0.0

    def test_consistent_with_ccdf(self):
        rng = np.random.default_rng(2)
        values = rng.integers(1, 50, size=300)
        xs, ps = ccdf(values)
        for x, p in zip(xs[:10], ps[:10]):
            assert ccdf_at(values, x) == pytest.approx(p)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ccdf_at(np.array([]), 1)
