"""RefreshScheduler mechanics: triggers, prioritization, backpressure.

Parity across full policy/index/executor matrices lives in
``test_drain_parity.py``; these tests pin the scheduling decisions
themselves on small deterministic indexes with an injected clock.
"""

import numpy as np
import pytest

from repro import (
    DynamicKnnIndex,
    KiffConfig,
    RefreshScheduler,
    SchedulerPolicy,
)
from repro.persistence import WriteAheadLog
from repro.streaming import AddUser, cold_rebuild_graph, ratings_batch
from tests.conftest import random_dataset


class FakeClock:
    """A manually advanced monotonic clock for staleness budgets."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def index():
    dataset = random_dataset(
        n_users=16, n_items=12, density=0.2, seed=3, ratings=True
    )
    ix = DynamicKnnIndex(dataset, KiffConfig(k=4), auto_refresh=False)
    yield ix
    ix.close()


def batch_for(users, item=0, rating=4.0):
    return ratings_batch(
        users, [item] * len(users), [rating] * len(users)
    )


class TestEagerDefault:
    def test_takes_over_auto_refresh(self, index):
        index.auto_refresh = True
        RefreshScheduler(index)
        assert index.auto_refresh is False

    def test_refuses_closed_index(self, index):
        index.close()
        with pytest.raises(RuntimeError, match="closed"):
            RefreshScheduler(index)

    def test_no_policy_refreshes_every_submission(self, index):
        scheduler = RefreshScheduler(index)
        result = scheduler.submit(batch_for([0, 1]))
        assert result.trigger == "eager"
        assert len(result.refreshes) == 1
        assert scheduler.queue_depth == 0
        assert index.graph == cold_rebuild_graph(index.dataset, index.config)

    def test_submit_reports_new_users(self, index):
        scheduler = RefreshScheduler(index)
        result = scheduler.submit(AddUser((0, 1), (4.0, 3.0)))
        assert result.new_users == (16,)
        assert result.accepted == 1

    def test_empty_submission_is_a_no_op(self, index):
        scheduler = RefreshScheduler(index)
        result = scheduler.submit(batch_for([]))
        assert result.accepted == 0
        assert result.trigger is None
        assert result.refreshes == ()


class TestEventLagBudget:
    def test_defers_until_lag_budget_violated(self, index):
        scheduler = RefreshScheduler(
            index, SchedulerPolicy(max_event_lag=5)
        )
        first = scheduler.submit(batch_for([0, 1]))
        assert first.trigger is None  # lag 2 < 5, deferred
        assert scheduler.queue_depth == 2
        assert scheduler.oldest_event_lag == 2
        second = scheduler.submit(batch_for([2, 3]))
        assert second.trigger is None  # oldest lag 4 < 5
        third = scheduler.submit(batch_for([4, 5]))
        assert third.trigger == "event_lag"  # oldest lag 6 >= 5
        assert scheduler.queue_depth == 0
        assert index.graph == cold_rebuild_graph(index.dataset, index.config)

    def test_lag_of_one_is_always_exact(self, index):
        scheduler = RefreshScheduler(
            index, SchedulerPolicy(max_event_lag=1)
        )
        for user in range(4):
            result = scheduler.submit(batch_for([user]))
            assert result.trigger == "event_lag"
            assert scheduler.queue_depth == 0


class TestWallStalenessBudget:
    def test_tick_fires_when_budget_expires(self, index):
        clock = FakeClock()
        scheduler = RefreshScheduler(
            index, SchedulerPolicy(max_wall_staleness=5.0), clock=clock
        )
        assert scheduler.submit(batch_for([0, 1])).trigger is None
        clock.advance(1.0)
        assert scheduler.tick() is None  # age 1 < 5
        assert scheduler.oldest_deferred_age == pytest.approx(1.0)
        clock.advance(4.5)
        stats = scheduler.tick()  # age 5.5 >= 5
        assert stats is not None
        assert scheduler.queue_depth == 0
        assert scheduler.oldest_deferred_age == 0.0

    def test_tick_on_clean_index_is_none(self, index):
        scheduler = RefreshScheduler(
            index, SchedulerPolicy(max_wall_staleness=0.0)
        )
        assert scheduler.tick() is None

    def test_submission_can_trigger_staleness(self, index):
        clock = FakeClock()
        scheduler = RefreshScheduler(
            index, SchedulerPolicy(max_wall_staleness=2.0), clock=clock
        )
        scheduler.submit(batch_for([0]))
        clock.advance(3.0)
        result = scheduler.submit(batch_for([1]))
        assert result.trigger == "staleness"
        assert scheduler.queue_depth == 0


class TestBlastRadiusCap:
    def test_capped_pass_picks_highest_in_degree_first(self, index):
        index.refresh()
        scheduler = RefreshScheduler(
            index,
            SchedulerPolicy(max_event_lag=100, max_dirty_per_refresh=1),
        )
        scheduler.submit(batch_for([2, 7, 11], item=1))
        before = set(index.dirty_users)
        assert before == {2, 7, 11}
        dirty = np.array(sorted(before), dtype=np.int64)
        radius = index.referrer_counts(dirty)
        expected = int(dirty[np.lexsort((dirty, -radius))[0]])
        stats = scheduler.refresh()
        cleaned = before - set(index.dirty_users)
        assert cleaned == {expected}
        assert stats.deferred_users == 2
        assert scheduler.deferred_users == 2

    def test_budget_violating_users_bypass_the_cap(self, index):
        scheduler = RefreshScheduler(
            index,
            SchedulerPolicy(max_event_lag=4, max_dirty_per_refresh=1),
        )
        scheduler.submit(batch_for([0, 1, 2]))  # lag 3: deferred
        result = scheduler.submit(batch_for([3]))  # oldest lag 4: forced
        assert result.trigger == "event_lag"
        # All three over-budget users ran despite the cap of 1; only the
        # fresh user 3 (lag 1) may remain deferred.
        assert set(index.dirty_users) <= {3}

    def test_uncapped_pass_is_a_full_refresh(self, index):
        scheduler = RefreshScheduler(
            index, SchedulerPolicy(max_event_lag=100)
        )
        scheduler.submit(batch_for([0, 1, 2, 3]))
        stats = scheduler.refresh()
        assert stats.deferred_users == 0
        assert scheduler.queue_depth == 0


class TestBackpressure:
    def test_refresh_mode_sheds_down_below_the_bound(self, index):
        scheduler = RefreshScheduler(
            index,
            SchedulerPolicy(
                max_event_lag=100,
                max_dirty_per_refresh=1,
                queue_bound=2,
            ),
        )
        assert scheduler.submit(batch_for([0, 1])).backpressure is None
        result = scheduler.submit(batch_for([2]))
        assert result.admitted
        assert result.backpressure is not None
        assert result.backpressure.queue_depth == 2
        assert len(result.refreshes) >= 1  # the shedding pass(es)
        assert scheduler.queue_depth < 2 + 1 + 1  # bound + this burst
        assert index.maintenance.scheduler_backpressure == 1

    def test_reject_mode_refuses_and_applies_nothing(self, index):
        scheduler = RefreshScheduler(
            index,
            SchedulerPolicy(
                max_event_lag=100,
                queue_bound=2,
                on_backpressure="reject",
            ),
        )
        scheduler.submit(batch_for([0, 1]))
        seq_before = index.last_seq
        result = scheduler.submit(batch_for([2, 3]))
        assert not result.admitted
        assert result.accepted == 0
        assert result.rejected == 2
        assert result.backpressure is not None
        assert index.last_seq == seq_before  # nothing journaled/applied
        assert index.maintenance.scheduler_events_rejected == 2
        # The caller-side contract: refresh, then the retry is admitted.
        scheduler.refresh()
        retry = scheduler.submit(batch_for([2, 3]))
        assert retry.admitted
        assert retry.accepted == 2

    def test_no_bound_means_no_backpressure(self, index):
        scheduler = RefreshScheduler(
            index, SchedulerPolicy(max_event_lag=1000)
        )
        for lo in range(0, 12, 2):
            result = scheduler.submit(batch_for([lo % 16, (lo + 1) % 16]))
            assert result.backpressure is None


class TestDrainAndStats:
    def test_drain_converges_and_empties_the_queue(self, index):
        scheduler = RefreshScheduler(
            index,
            SchedulerPolicy(max_event_lag=1000, max_dirty_per_refresh=2),
        )
        scheduler.submit(batch_for([0, 1, 2, 3, 4], item=2))
        passes = scheduler.drain()
        assert len(passes) >= 1
        assert scheduler.queue_depth == 0
        assert index.pending_events == 0
        assert index.graph == cold_rebuild_graph(index.dataset, index.config)
        assert scheduler.drain() == ()  # idempotent

    def test_stats_snapshot(self, index):
        scheduler = RefreshScheduler(
            index,
            SchedulerPolicy(max_event_lag=100, queue_bound=50),
        )
        scheduler.submit(batch_for([0, 1]))
        stats = scheduler.stats()
        assert stats["queue_depth"] == 2
        assert stats["queue_bound"] == 50
        assert stats["pending_events"] == 2
        assert stats["last_seq"] == 2
        assert stats["scheduler_passes"] == 0
        assert stats["snapshot_lag"] == 2
        scheduler.drain()
        stats = scheduler.stats()
        assert stats["queue_depth"] == 0
        assert stats["snapshot_lag"] == 0

    def test_counters_accumulate(self, index):
        scheduler = RefreshScheduler(
            index,
            SchedulerPolicy(max_event_lag=4, max_dirty_per_refresh=1),
        )
        scheduler.submit(batch_for([0, 1]))  # lag 2: deferred
        # Oldest lag hits 4: the pass runs forced {0, 1} plus at most
        # one capped pick, so at least one of {2, 3} defers.
        scheduler.submit(batch_for([2, 3]))
        maintenance = index.maintenance
        assert maintenance.scheduler_passes >= 1
        assert maintenance.scheduler_deferrals >= 1


class TestDurability:
    def test_restore_resumes_the_deferred_set(self, tmp_path):
        dataset = random_dataset(
            n_users=14, n_items=10, density=0.2, seed=8, ratings=True
        )
        state = tmp_path / "state"
        policy = SchedulerPolicy(max_event_lag=100, max_dirty_per_refresh=1)
        live = RefreshScheduler(
            DynamicKnnIndex(
                dataset,
                KiffConfig(k=3),
                auto_refresh=False,
                wal=WriteAheadLog(state / "wal.jsonl", fsync_every=1),
            ),
            policy,
        )
        live.checkpoint(state)
        # Half-integer ratings cannot duplicate the integer-rated base
        # dataset, so every event genuinely dirties its user.
        live.submit(batch_for([0, 1, 2], item=1, rating=2.5))
        live.refresh()  # retires one user, defers two
        # Checkpoint the mid-drain state: the deferred set rides along.
        live.checkpoint(state)
        live.submit(batch_for([3], item=2, rating=2.5))
        deferred = set(live.index.dirty_users)
        assert len(deferred) == 3
        del live  # the crash: in-memory state is gone

        restored = RefreshScheduler.restore(DynamicKnnIndex, state, policy)
        try:
            assert set(restored.index.dirty_users) == deferred
            assert restored.queue_depth == 3
            restored.drain()
            assert restored.index.graph == cold_rebuild_graph(
                restored.index.dataset, restored.index.config
            )
        finally:
            restored.close()

    def test_checkpoint_delegates_to_the_index(self, index, tmp_path):
        scheduler = RefreshScheduler(index)
        path = scheduler.checkpoint(tmp_path / "state")
        assert path.exists()

    def test_close_is_idempotent(self, index):
        scheduler = RefreshScheduler(index)
        scheduler.close()
        scheduler.close()
        assert index.closed
