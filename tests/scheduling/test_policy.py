"""SchedulerPolicy validation, config lifting, and the Backpressure signal."""

import pytest

from repro import KiffConfig, SchedulerPolicy
from repro.scheduling.policy import Backpressure


class TestValidation:
    def test_defaults_are_always_exact(self):
        policy = SchedulerPolicy()
        assert policy.always_exact
        assert policy.queue_bound is None
        assert policy.on_backpressure == "refresh"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_event_lag": 0},
            {"max_event_lag": -3},
            {"max_wall_staleness": -0.1},
            {"max_wall_staleness": float("inf")},
            {"max_wall_staleness": float("nan")},
            {"max_dirty_per_refresh": 0},
            {"queue_bound": 0},
            {"on_backpressure": "drop"},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            SchedulerPolicy(**kwargs)

    def test_zero_wall_staleness_is_legal(self):
        """Budget 0 means 'refresh whenever anyone is dirty' — valid."""
        policy = SchedulerPolicy(max_wall_staleness=0.0)
        assert policy.max_wall_staleness == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_event_lag": 5},
            {"max_wall_staleness": 2.0},
            {"max_dirty_per_refresh": 3},
        ],
    )
    def test_any_staleness_knob_breaks_always_exact(self, kwargs):
        assert not SchedulerPolicy(**kwargs).always_exact

    def test_queue_bound_alone_stays_always_exact(self):
        """Admission control without staleness knobs never defers."""
        assert SchedulerPolicy(queue_bound=4).always_exact


class TestFromConfig:
    def test_lifts_all_four_knobs(self):
        config = KiffConfig(
            k=4,
            max_event_lag=7,
            staleness_budget=1.5,
            max_dirty_per_refresh=3,
            queue_bound=9,
        )
        policy = SchedulerPolicy.from_config(config, on_backpressure="reject")
        assert policy.max_event_lag == 7
        assert policy.max_wall_staleness == 1.5
        assert policy.max_dirty_per_refresh == 3
        assert policy.queue_bound == 9
        assert policy.on_backpressure == "reject"

    def test_unset_config_gives_always_exact(self):
        assert SchedulerPolicy.from_config(KiffConfig(k=4)).always_exact

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_event_lag": 0},
            {"staleness_budget": -1.0},
            {"max_dirty_per_refresh": -2},
            {"queue_bound": 0},
        ],
    )
    def test_config_validates_knobs_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            KiffConfig(k=4, **kwargs)


class TestBackpressure:
    def test_signal_renders_its_fields(self):
        signal = Backpressure(
            queue_depth=7, queue_bound=5, pending_events=12, oldest_age=0.25
        )
        text = str(signal)
        assert "7/5" in text
        assert "12 pending" in text
