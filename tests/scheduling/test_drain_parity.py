"""Drain-to-parity: every policy converges to the bit-exact graph.

The scheduler's contract is that staleness is *bounded and temporary*:
whatever the policy deferred, :meth:`RefreshScheduler.drain` must
restore the exact converged graph — neighbour ids and similarities —
that a cold ``kiff()`` rebuild produces on the final dataset.  The
matrix below drives randomized scheduled streams (the differential
parity corpus's generator) through every policy shape on both index
classes and all three executors, and finishes with a real-SIGKILL
restore drill whose pending set is non-empty at the kill point.
"""

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro import (
    DynamicKnnIndex,
    KiffConfig,
    RefreshScheduler,
    SchedulerPolicy,
)
from repro.streaming import (
    ShardedKnnIndex,
    cold_rebuild_graph,
    ratings_batch,
)
from tests.conftest import random_dataset

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Every policy shape the scheduler distinguishes: eager degenerate,
#: lag-budgeted + capped, wall-budgeted + shedding admission control,
#: and rejecting admission control.
POLICIES = {
    "always-exact": SchedulerPolicy(),
    "lag-capped": SchedulerPolicy(max_event_lag=6, max_dirty_per_refresh=3),
    "wall-shed": SchedulerPolicy(
        max_wall_staleness=1e9,
        max_dirty_per_refresh=2,
        queue_bound=4,
        on_backpressure="refresh",
    ),
    "lag-reject": SchedulerPolicy(
        max_event_lag=10,
        max_dirty_per_refresh=2,
        queue_bound=5,
        on_backpressure="reject",
    ),
}


def drive_scheduled_stream(scheduler, seed, n_events=30, max_item=20):
    """The parity corpus's random rating stream, in scheduled bursts."""
    rng = np.random.default_rng(seed)
    produced = 0
    while produced < n_events:
        size = min(int(rng.integers(1, 5)), n_events - produced)
        produced += size
        n = scheduler.index.n_users
        batch = ratings_batch(
            rng.integers(0, n, size=size),
            rng.integers(0, max_item, size=size),
            rng.integers(0, 6, size=size).astype(float),
        )
        while not scheduler.submit(batch).admitted:
            scheduler.refresh()  # the reject-mode retry contract
        if rng.random() < 0.2:
            scheduler.tick()
    return scheduler.drain()


def assert_drains_to_parity(index, policy, seed, metric="cosine"):
    scheduler = RefreshScheduler(index, policy)
    drive_scheduled_stream(scheduler, seed)
    assert scheduler.queue_depth == 0
    assert index.pending_events == 0
    assert index.graph == cold_rebuild_graph(
        index.dataset, index.config, metric=metric
    )


class TestDynamicIndex:
    @pytest.mark.parametrize("seed", range(7))
    @pytest.mark.parametrize("metric", ["cosine", "jaccard"])
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_drains_to_parity(self, name, metric, seed):
        dataset = random_dataset(
            n_users=18, n_items=14, density=0.15, seed=seed, ratings=True
        )
        index = DynamicKnnIndex(
            dataset, KiffConfig(k=4), metric=metric, auto_refresh=False
        )
        try:
            assert_drains_to_parity(index, POLICIES[name], seed, metric)
        finally:
            index.close()


class TestShardedIndex:
    @pytest.mark.parametrize("seed", range(2))
    @pytest.mark.parametrize("executor", ["serial", "threads"])
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_drains_to_parity(self, name, executor, seed):
        dataset = random_dataset(
            n_users=18, n_items=14, density=0.15, seed=seed, ratings=True
        )
        index = ShardedKnnIndex(
            dataset,
            KiffConfig(k=4),
            auto_refresh=False,
            n_shards=3,
            executor=executor,
        )
        try:
            assert_drains_to_parity(index, POLICIES[name], seed)
        finally:
            index.close()

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_drains_to_parity_processes(self, name):
        dataset = random_dataset(
            n_users=18, n_items=14, density=0.15, seed=1, ratings=True
        )
        index = ShardedKnnIndex(
            dataset,
            KiffConfig(k=4),
            auto_refresh=False,
            n_shards=2,
            executor="processes",
        )
        try:
            assert_drains_to_parity(index, POLICIES[name], seed=1)
        finally:
            index.close()


_DRILL_SCRIPT = textwrap.dedent(
    """
    import os, signal, sys

    import numpy as np

    from repro import DynamicKnnIndex, KiffConfig, RefreshScheduler, \\
        SchedulerPolicy
    from repro.datasets import BipartiteDataset
    from repro.persistence import WriteAheadLog
    from repro.streaming import ratings_batch

    state = sys.argv[1]
    rng = np.random.default_rng(7)
    rows, cols = np.nonzero(rng.random((16, 12)) < 0.3)
    dataset = BipartiteDataset.from_edges(
        rows, cols, rng.integers(1, 6, size=rows.size).astype(float),
        n_users=16, n_items=12, name="drill",
    )
    scheduler = RefreshScheduler(
        DynamicKnnIndex(
            dataset, KiffConfig(k=4), auto_refresh=False,
            wal=WriteAheadLog(os.path.join(state, "wal.jsonl"),
                              fsync_every=1),
        ),
        SchedulerPolicy(max_event_lag=8, max_dirty_per_refresh=2),
    )
    scheduler.checkpoint(state)
    for lo in range(0, 24, 3):
        users = rng.integers(0, 16, size=3)
        scheduler.submit(ratings_batch(
            users, rng.integers(0, 14, size=3),
            rng.integers(0, 6, size=3) + 0.5,  # never a duplicate
        ))
        if lo == 12:
            scheduler.checkpoint(state)
    assert scheduler.queue_depth > 0, "drill needs a pending set"
    print(f"pending={scheduler.queue_depth}", flush=True)
    os.kill(os.getpid(), signal.SIGKILL)
    """
)


@pytest.mark.skipif(sys.platform == "win32", reason="needs SIGKILL")
class TestSigkillRestoreDrill:
    def test_sigkill_with_pending_set_restores_and_drains(self, tmp_path):
        """Die by SIGKILL mid-deferral; the restored scheduler resumes
        the journaled pending set and drains to the exact graph."""
        state = tmp_path / "state"
        state.mkdir()
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-c", _DRILL_SCRIPT, str(state)],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        assert "pending=" in proc.stdout  # killed past the assert

        scheduler = RefreshScheduler.restore(
            DynamicKnnIndex,
            state,
            SchedulerPolicy(max_event_lag=8, max_dirty_per_refresh=2),
        )
        try:
            assert scheduler.index.restore_info.replayed_events > 0
            assert scheduler.queue_depth > 0  # the pending set survived
            passes = scheduler.drain()
            assert passes  # draining did real deferred work
            index = scheduler.index
            assert index.graph == cold_rebuild_graph(
                index.dataset, index.config
            )
        finally:
            scheduler.close()
