"""Cross-module integration tests.

These exercise the full pipeline a downstream user runs: load a preset,
construct graphs with every algorithm and several metrics, measure,
persist, reload, analyse.
"""

import pytest

from repro import (
    HyRecConfig,
    KiffConfig,
    NNDescentConfig,
    SimilarityEngine,
    brute_force_knn,
    hyrec,
    kiff,
    nn_descent,
    recall,
)
from repro.datasets import load_dataset
from repro.graph import analyze, load_graph, save_graph


ALGORITHM_RUNNERS = {
    "kiff": lambda engine, k: kiff(engine, KiffConfig(k=k)),
    "nn-descent": lambda engine, k: nn_descent(
        engine, NNDescentConfig(k=k, seed=0)
    ),
    "hyrec": lambda engine, k: hyrec(engine, HyRecConfig(k=k, seed=0)),
}


@pytest.mark.parametrize("dataset_name", ["wikipedia", "arxiv", "gowalla", "dblp"])
@pytest.mark.parametrize("algorithm", sorted(ALGORITHM_RUNNERS))
def test_full_pipeline(dataset_name, algorithm, tmp_path):
    """Construct -> measure -> persist -> reload -> analyse, per preset."""
    dataset = load_dataset(dataset_name, scale="tiny")
    k = 6
    engine = SimilarityEngine(dataset)
    result = ALGORITHM_RUNNERS[algorithm](engine, k)

    # Construction invariants.
    assert result.graph.n_users == dataset.n_users
    assert result.graph.k == k
    assert result.evaluations > 0
    assert result.wall_time > 0
    assert result.iterations >= 1

    # Quality: everything beats a coin flip against the exact graph.
    exact = brute_force_knn(SimilarityEngine(dataset), k)
    value = recall(result.graph, exact.graph)
    assert value > 0.5

    # Persistence round trip.
    path = save_graph(result.graph, tmp_path / f"{dataset_name}-{algorithm}.npz")
    assert load_graph(path) == result.graph

    # Analytics run and are sane.
    stats = analyze(result.graph)
    assert stats.edges == result.graph.edge_count()
    assert 0.0 <= stats.reciprocity <= 1.0


@pytest.mark.parametrize("metric", ["cosine", "jaccard", "adamic_adar", "dice"])
def test_kiff_beats_baselines_on_scan_rate_any_metric(metric, tiny_wikipedia):
    """The paper's core claim holds for every overlap-safe metric."""
    k = 8
    kiff_run = kiff(
        SimilarityEngine(tiny_wikipedia, metric=metric), KiffConfig(k=k)
    )
    nnd_run = nn_descent(
        SimilarityEngine(tiny_wikipedia, metric=metric),
        NNDescentConfig(k=k, seed=0),
    )
    exact = brute_force_knn(SimilarityEngine(tiny_wikipedia, metric=metric), k)
    assert kiff_run.scan_rate < nnd_run.scan_rate
    assert recall(kiff_run.graph, exact.graph) >= (
        recall(nnd_run.graph, exact.graph) - 0.05
    )


def test_counting_is_consistent_across_algorithms(tiny_wikipedia):
    """Scan rate equals evaluations / (n(n-1)/2) for every algorithm."""
    n = tiny_wikipedia.n_users
    pairs = n * (n - 1) / 2
    for algorithm, runner in ALGORITHM_RUNNERS.items():
        engine = SimilarityEngine(tiny_wikipedia)
        result = runner(engine, 6)
        assert result.scan_rate == pytest.approx(result.evaluations / pairs)


def test_construction_result_summary(tiny_wikipedia):
    engine = SimilarityEngine(tiny_wikipedia)
    result = kiff(engine, KiffConfig(k=6))
    summary = result.summary()
    assert summary["algorithm"] == "kiff"
    assert summary["evaluations"] == result.evaluations
    assert summary["iterations"] == result.iterations
    assert {"time_preprocessing", "time_candidate_selection", "time_similarity"} <= set(
        summary
    )


def test_symmetric_dataset_pipeline(tiny_arxiv):
    """Co-authorship datasets work end to end and produce sane graphs."""
    result = kiff(SimilarityEngine(tiny_arxiv), KiffConfig(k=6))
    stats = analyze(result.graph)
    # A co-authorship KNN graph is highly reciprocal: collaboration
    # similarity is symmetric and the communities are tight.
    assert stats.reciprocity > 0.3
    assert stats.largest_component > tiny_arxiv.n_users / 10
