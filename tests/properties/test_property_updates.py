"""Property-based tests: merge_topk ≡ sequential heap updates, and
edge-list persistence is lossless."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.heap import KnnHeap
from repro.datasets.loaders import load_edge_list, save_edge_list
from repro.graph.knn_graph import MISSING
from repro.graph.updates import merge_topk
from tests.properties.test_property_rcs import small_datasets


@st.composite
def candidate_streams(draw):
    """(n_users, k, candidate edge arrays) with tie-prone similarities."""
    n_users = draw(st.integers(2, 10))
    k = draw(st.integers(1, 4))
    n_cands = draw(st.integers(0, 80))
    users = draw(
        st.lists(
            st.integers(0, n_users - 1), min_size=n_cands, max_size=n_cands
        )
    )
    ids = draw(
        st.lists(
            st.integers(0, n_users - 1), min_size=n_cands, max_size=n_cands
        )
    )
    # Two-decimal similarities force plenty of ties.  Candidate sims
    # always arrive through the kernels' float32 score boundary, so the
    # generator applies the same cast — feeding float64 values that are
    # not float32-representable would model an impossible input (the
    # stored incumbent would never compare equal to its own re-feed).
    sims = draw(
        st.lists(
            st.integers(0, 99).map(lambda x: x / 100),
            min_size=n_cands,
            max_size=n_cands,
        )
    )
    sims = np.array(sims, dtype=np.float64).astype(np.float32)
    return n_users, k, np.array(users), np.array(ids), sims.astype(np.float64)


class TestMergeTopkProperties:
    @given(candidate_streams())
    @settings(max_examples=120, deadline=None)
    def test_equivalent_to_heaps(self, stream):
        n_users, k, users, ids, sims = stream
        neighbors = np.full((n_users, k), MISSING, dtype=np.int64)
        row_sims = np.full((n_users, k), -np.inf)
        new_n, new_s, _ = merge_topk(neighbors, row_sims, users, ids, sims)

        heaps = [KnnHeap(k) for _ in range(n_users)]
        for user, cand, sim in zip(users, ids, sims):
            if user != cand:
                heaps[int(user)].update(int(cand), float(sim))
        for user in range(n_users):
            heap_n, heap_s = heaps[user].to_arrays()
            assert new_n[user].tolist() == heap_n.tolist()
            np.testing.assert_allclose(new_s[user], heap_s)

    @given(candidate_streams())
    @settings(max_examples=80, deadline=None)
    def test_batched_equals_incremental(self, stream):
        """Feeding candidates in one batch or in two halves is identical
        (the fixed point does not depend on batching boundaries)."""
        n_users, k, users, ids, sims = stream
        empty_n = np.full((n_users, k), MISSING, dtype=np.int64)
        empty_s = np.full((n_users, k), -np.inf)

        one_shot_n, one_shot_s, _ = merge_topk(
            empty_n, empty_s, users, ids, sims
        )
        half = len(users) // 2
        mid_n, mid_s, _ = merge_topk(
            empty_n, empty_s, users[:half], ids[:half], sims[:half]
        )
        two_shot_n, two_shot_s, _ = merge_topk(
            mid_n, mid_s, users[half:], ids[half:], sims[half:]
        )
        assert np.array_equal(one_shot_n, two_shot_n)
        np.testing.assert_allclose(one_shot_s, two_shot_s)

    @given(candidate_streams())
    @settings(max_examples=80, deadline=None)
    def test_changes_bounded_by_slots(self, stream):
        n_users, k, users, ids, sims = stream
        neighbors = np.full((n_users, k), MISSING, dtype=np.int64)
        row_sims = np.full((n_users, k), -np.inf)
        _, _, changes = merge_topk(neighbors, row_sims, users, ids, sims)
        assert 0 <= changes <= n_users * k


class TestPersistenceProperties:
    @given(small_datasets(ratings=True))
    @settings(max_examples=30, deadline=None)
    def test_edge_list_round_trip(self, dataset):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "ds.edges"
            save_edge_list(dataset, path)
            loaded = load_edge_list(
                path, n_users=dataset.n_users, n_items=dataset.n_items
            )
        assert loaded == dataset
