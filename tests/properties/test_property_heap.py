"""Property-based tests for the KNN heap."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.heap import KnnHeap

offers = st.lists(
    st.tuples(st.integers(0, 30), st.floats(0, 1, allow_nan=False)),
    min_size=0,
    max_size=120,
)


class TestHeapProperties:
    @given(st.integers(1, 8), offers)
    @settings(max_examples=100, deadline=None)
    def test_size_never_exceeds_k(self, k, stream):
        heap = KnnHeap(k)
        for neighbor, sim in stream:
            heap.update(neighbor, sim)
        assert len(heap) <= k

    @given(st.integers(1, 8), offers)
    @settings(max_examples=100, deadline=None)
    def test_keeps_topk_of_best_offers(self, k, stream):
        """The heap retains the k best (sim, -id) offers, deduplicated by
        neighbour with max similarity."""
        heap = KnnHeap(k)
        for neighbor, sim in stream:
            heap.update(neighbor, sim)
        best: dict[int, float] = {}
        for neighbor, sim in stream:
            best[neighbor] = max(best.get(neighbor, -np.inf), sim)
        expected = sorted(best.items(), key=lambda t: (-t[1], t[0]))[:k]
        got = heap.entries()
        assert [n for n, _ in got] == [n for n, _ in expected]
        np.testing.assert_allclose(
            [s for _, s in got], [s for _, s in expected]
        )

    @given(st.integers(1, 8), offers)
    @settings(max_examples=60, deadline=None)
    def test_update_return_value_reflects_membership_change(self, k, stream):
        heap = KnnHeap(k)
        for neighbor, sim in stream:
            before = dict(heap.entries())
            changed = heap.update(neighbor, sim)
            after = dict(heap.entries())
            assert changed in (0, 1)
            assert (before != after) == bool(changed)

    @given(st.integers(1, 8), offers)
    @settings(max_examples=60, deadline=None)
    def test_min_similarity_is_minimum_of_entries(self, k, stream):
        heap = KnnHeap(k)
        for neighbor, sim in stream:
            heap.update(neighbor, sim)
            entries = heap.entries()
            if entries:
                assert heap.min_similarity() == min(s for _, s in entries)
