"""Property-based tests for streaming KNN maintenance.

Random event streams (insert user, add/overwrite/delete rating, remove
user) from the shared shrinkable strategy in ``tests/conftest.py`` are
replayed against a :class:`DynamicKnnIndex`; whatever the interleaving,
the maintained graph must stay structurally sound and — after a refresh —
exactly equal a cold converged rebuild.
"""

import numpy as np
from hypothesis import given, settings

from repro import DynamicKnnIndex, KiffConfig
from repro.graph.knn_graph import MISSING
from repro.streaming import cold_rebuild_graph
from tests.conftest import (
    apply_streaming_events,
    random_dataset,
    streaming_events,
)


def _fresh_index(k=3, auto_refresh=False, seed=3):
    dataset = random_dataset(
        n_users=8, n_items=12, density=0.2, seed=seed, ratings=True
    )
    return DynamicKnnIndex(dataset, KiffConfig(k=k), auto_refresh=auto_refresh)


class TestStructuralInvariants:
    @given(events=streaming_events())
    @settings(max_examples=40)
    def test_no_self_edges(self, events):
        index = _fresh_index()
        apply_streaming_events(index, events)
        index.refresh()
        graph = index.graph
        rows = np.arange(graph.n_users)[:, None]
        assert not np.any(graph.neighbors == rows)

    @given(events=streaming_events())
    @settings(max_examples=40)
    def test_ids_in_range(self, events):
        index = _fresh_index()
        apply_streaming_events(index, events)
        index.refresh()
        graph = index.graph
        valid = graph.neighbors[graph.valid_mask]
        assert graph.n_users == index.n_users
        if valid.size:
            assert valid.min() >= 0
            assert valid.max() < index.n_users

    @given(events=streaming_events())
    @settings(max_examples=40)
    def test_rows_canonical_and_sims_monotone(self, events):
        """Valid entries first; per-row sims non-increasing."""
        index = _fresh_index()
        apply_streaming_events(index, events)
        index.refresh()
        graph = index.graph
        for user in range(graph.n_users):
            row = graph.neighbors[user]
            valid = row != MISSING
            # Valid prefix: no hole before a valid entry.
            assert not np.any(valid[1:] & ~valid[:-1])
            sims = graph.sims[user][valid]
            assert np.all(sims[:-1] >= sims[1:])
            # Empty slots carry -inf.
            assert np.all(np.isneginf(graph.sims[user][~valid]))

    @given(events=streaming_events())
    @settings(max_examples=40)
    def test_no_duplicate_neighbors_per_row(self, events):
        index = _fresh_index()
        apply_streaming_events(index, events)
        index.refresh()
        graph = index.graph
        for user in range(graph.n_users):
            ids = graph.neighbors_of(user)
            assert ids.size == np.unique(ids).size

    @given(events=streaming_events())
    @settings(max_examples=40)
    def test_removed_users_have_empty_rows(self, events):
        index = _fresh_index()
        apply_streaming_events(index, events)
        index.refresh()
        graph = index.graph
        degrees = graph.degree()
        for user in range(index.n_users):
            if not index.builder.profile(user):
                assert degrees[user] == 0


class TestStreamParityProperty:
    @given(events=streaming_events(max_events=14))
    @settings(max_examples=20)
    def test_refresh_restores_cold_rebuild_parity(self, events):
        index = _fresh_index()
        apply_streaming_events(index, events)
        index.refresh()
        assert index.graph == cold_rebuild_graph(index.dataset, index.config)

    @given(events=streaming_events(max_events=10))
    @settings(max_examples=15)
    def test_auto_refresh_matches_deferred(self, events):
        """Refresh granularity never changes the final graph."""
        eager = _fresh_index(auto_refresh=True)
        deferred = _fresh_index(auto_refresh=False)
        apply_streaming_events(eager, events)
        apply_streaming_events(deferred, events)
        deferred.refresh()
        assert eager.graph == deferred.graph
