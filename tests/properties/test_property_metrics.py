"""Property-based tests for similarity metrics and recall."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.knn_graph import KnnGraph
from repro.graph.metrics import per_user_recall, recall, strict_recall
from repro.similarity import ProfileIndex, get_metric
from tests.properties.test_property_rcs import small_datasets

METRIC_NAMES = ("cosine", "jaccard", "adamic_adar", "overlap", "dice")


class TestMetricProperties:
    @given(small_datasets(ratings=True), st.sampled_from(METRIC_NAMES))
    @settings(max_examples=40, deadline=None)
    def test_properties_5_and_6(self, dataset, metric_name):
        """Zero iff no shared items; non-negative otherwise (Sec. III-D)."""
        metric = get_metric(metric_name)
        index = ProfileIndex(dataset)
        rng = np.random.default_rng(0)
        for _ in range(15):
            u, v = rng.integers(0, dataset.n_users, size=2)
            if u == v:
                continue
            shared = set(dataset.user_items(int(u)).tolist()) & set(
                dataset.user_items(int(v)).tolist()
            )
            score = metric.score_pair(index, int(u), int(v))
            assert score >= 0.0
            if not shared:
                assert score == 0.0

    @given(small_datasets(ratings=True), st.sampled_from(METRIC_NAMES))
    @settings(max_examples=30, deadline=None)
    def test_batch_block_pair_agree(self, dataset, metric_name):
        metric = get_metric(metric_name)
        index = ProfileIndex(dataset)
        n = dataset.n_users
        us, vs = np.triu_indices(n, k=1)
        if us.size == 0:
            return
        batch = metric.score_batch(index, us.astype(np.int64), vs.astype(np.int64))
        block = metric.score_block(index, np.arange(n, dtype=np.int64))
        for j in range(us.size):
            pair = metric.score_pair(index, int(us[j]), int(vs[j]))
            assert abs(batch[j] - pair) < 1e-9
            assert abs(block[us[j], vs[j]] - pair) < 1e-9


@st.composite
def graph_pairs(draw):
    """Two graphs over the same users, the same k, and — crucially — the
    same underlying similarity function (edge sims come from one shared
    symmetric matrix, as they would in any real construction run)."""
    n_users = draw(st.integers(2, 12))
    k = draw(st.integers(1, min(4, n_users - 1)))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    sim_matrix = rng.random((n_users, n_users))
    sim_matrix = (sim_matrix + sim_matrix.T) / 2

    def build():
        rows = {}
        for u in range(n_users):
            count = draw(st.integers(0, k))
            others = draw(
                st.lists(
                    st.integers(0, n_users - 1).filter(lambda v: v != u),
                    min_size=count,
                    max_size=count,
                    unique=True,
                )
            )
            rows[u] = [(v, float(sim_matrix[u, v])) for v in others]
        return KnnGraph.from_neighbor_dict(rows, n_users=n_users, k=k)

    return build(), build()


class TestRecallProperties:
    @given(graph_pairs())
    @settings(max_examples=60, deadline=None)
    def test_recall_bounded(self, pair):
        approx, exact = pair
        values = per_user_recall(approx, exact)
        assert np.all(values >= 0.0)
        assert np.all(values <= 1.0)

    @given(graph_pairs())
    @settings(max_examples=60, deadline=None)
    def test_self_recall_is_one(self, pair):
        graph, _ = pair
        assert recall(graph, graph) == 1.0

    @given(graph_pairs())
    @settings(max_examples=60, deadline=None)
    def test_strict_recall_lower_bounds_value_recall(self, pair):
        approx, exact = pair
        assert strict_recall(approx, exact) <= recall(approx, exact) + 1e-12
