"""Property-based tests for the counting phase (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.rcs import build_rcs, build_rcs_reference
from repro.datasets.bipartite import BipartiteDataset


@st.composite
def small_datasets(draw, max_users=20, max_items=15, ratings=False):
    """Arbitrary small bipartite datasets (at least one edge)."""
    n_users = draw(st.integers(2, max_users))
    n_items = draw(st.integers(1, max_items))
    n_edges = draw(st.integers(1, n_users * n_items))
    cells = draw(
        st.sets(
            st.integers(0, n_users * n_items - 1),
            min_size=1,
            max_size=n_edges,
        )
    )
    cells = np.array(sorted(cells), dtype=np.int64)
    users, items = cells // n_items, cells % n_items
    if ratings:
        values = draw(
            st.lists(
                st.floats(0.5, 5.0, allow_nan=False),
                min_size=len(cells),
                max_size=len(cells),
            )
        )
    else:
        values = None
    return BipartiteDataset.from_edges(
        users, items, values, n_users=n_users, n_items=n_items
    )


class TestRcsProperties:
    @given(small_datasets())
    @settings(max_examples=60, deadline=None)
    def test_fast_equals_reference(self, dataset):
        fast = build_rcs(dataset)
        reference = build_rcs_reference(dataset)
        assert np.array_equal(fast.offsets, reference.offsets)
        assert np.array_equal(fast.candidates, reference.candidates)
        assert np.array_equal(fast.counts, reference.counts)

    @given(small_datasets())
    @settings(max_examples=40, deadline=None)
    def test_pivot_candidates_above_user(self, dataset):
        rcs = build_rcs(dataset, pivot=True)
        for user in range(rcs.n_users):
            cands = rcs.candidates_of(user)
            assert np.all(cands > user)

    @given(small_datasets())
    @settings(max_examples=40, deadline=None)
    def test_counts_sorted_descending(self, dataset):
        rcs = build_rcs(dataset)
        for user in range(rcs.n_users):
            counts = rcs.counts_of(user)
            assert np.all(np.diff(counts) <= 0)

    @given(small_datasets())
    @settings(max_examples=40, deadline=None)
    def test_counts_match_true_intersections(self, dataset):
        rcs = build_rcs(dataset)
        for user in range(rcs.n_users):
            items_u = set(dataset.user_items(user).tolist())
            for cand, count in zip(
                rcs.candidates_of(user), rcs.counts_of(user)
            ):
                items_v = set(dataset.user_items(int(cand)).tolist())
                assert len(items_u & items_v) == count

    @given(small_datasets())
    @settings(max_examples=40, deadline=None)
    def test_pivoted_plus_mirror_equals_symmetric(self, dataset):
        pivoted = build_rcs(dataset, pivot=True)
        symmetric = build_rcs(dataset, pivot=False)
        assert symmetric.total_candidates == 2 * pivoted.total_candidates
        # Every pivoted pair appears in both directions in the full RCS.
        for user in range(pivoted.n_users):
            for cand in pivoted.candidates_of(user):
                assert int(cand) in symmetric.candidates_of(user).tolist()
                assert user in symmetric.candidates_of(int(cand)).tolist()

    @given(small_datasets(ratings=True), st.floats(0.5, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_min_rating_monotone_shrinkage(self, dataset, threshold):
        base = build_rcs(dataset)
        pruned = build_rcs(dataset, min_rating=threshold)
        assert pruned.total_candidates <= base.total_candidates
