"""Property-based tests for the incremental snapshot / index fast paths.

The dirty-set-proportional refresh rests on two exactness claims:

* ``MutableBipartiteBuilder.snapshot(dirty_users=...)`` — however
  snapshots interleave with mutations (and whatever dirty hints callers
  pass), the patched dataset equals a from-scratch materialisation of
  the live profiles, CSC mirror included.
* ``ProfileIndex.update(dataset, dirty)`` chained across arbitrary
  mutation steps equals a cold ``ProfileIndex`` on the final dataset.

Both are driven here by the shared shrinkable event strategy.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import BipartiteDataset, MutableBipartiteBuilder
from repro.similarity import ProfileIndex
from tests.conftest import random_dataset, streaming_events


def _apply_builder_events(builder, events):
    """Replay conftest event tuples directly against a builder."""
    for event in events:
        kind = event[0]
        if kind == "rate":
            _, slot, item, rating = event
            builder.set_rating(slot % builder.n_users, item, float(rating))
        elif kind == "add_user":
            profile = {item: float(rating) for item, rating in event[1]}
            builder.add_user(tuple(profile), tuple(profile.values()))
        else:  # remove
            builder.clear_user(event[1] % builder.n_users)


def _reference_dataset(builder):
    """Full materialisation of the live profiles, bypassing the cache."""
    return BipartiteDataset.from_profiles(
        [dict(builder.profile(u)) for u in range(builder.n_users)],
        n_users=builder.n_users,
        n_items=max(builder.n_items, 1),
    )


class TestInterleavedSnapshots:
    @given(
        chunks=st.lists(streaming_events(max_events=8), max_size=5),
        data=st.data(),
    )
    @settings(max_examples=60)
    def test_incremental_snapshots_equal_full(self, chunks, data):
        """Snapshots interleaved with mutation chunks stay exact, with
        or without caller-supplied dirty hints, CSC mirror included."""
        seed_dataset = random_dataset(
            n_users=5, n_items=10, density=0.25, seed=11, ratings=True
        )
        builder = MutableBipartiteBuilder.from_dataset(seed_dataset)
        for chunk in chunks:
            _apply_builder_events(builder, chunk)
            mode = data.draw(
                st.sampled_from(["auto", "hint", "superset", "csc"]),
                label="snapshot mode",
            )
            dirty_hint = None
            if mode == "hint":
                dirty_hint = sorted(builder.dirty_rows)
            elif mode == "superset":
                extra = data.draw(
                    st.sets(
                        st.integers(0, builder.n_users - 1), max_size=3
                    ),
                    label="extra dirty",
                )
                dirty_hint = sorted(set(builder.dirty_rows) | extra)
            elif mode == "csc" and builder._base is not None:
                builder._base.csc  # force the mirror so patching engages
            snapshot = builder.snapshot(dirty_users=dirty_hint)
            reference = _reference_dataset(builder)
            assert snapshot == reference
            assert snapshot.n_users == reference.n_users
            assert snapshot.n_items == reference.n_items
            if snapshot._csc_cache:
                patched = snapshot._csc_cache[0]
                truth = reference.matrix.tocsc()
                assert abs(patched - truth).nnz == 0
                np.testing.assert_array_equal(patched.indices, truth.indices)
                np.testing.assert_array_equal(patched.data, truth.data)
        # Final full-path cross-check.
        assert builder.snapshot(name="check") == _reference_dataset(builder)

    @given(chunks=st.lists(streaming_events(max_events=8), max_size=4))
    @settings(max_examples=40)
    def test_uncovering_hint_falls_back_exactly(self, chunks):
        """A dirty hint missing tracked mutations triggers the full
        fallback, never a wrong patch."""
        seed_dataset = random_dataset(
            n_users=5, n_items=10, density=0.25, seed=13, ratings=True
        )
        builder = MutableBipartiteBuilder.from_dataset(seed_dataset)
        for chunk in chunks:
            _apply_builder_events(builder, chunk)
            assert builder.snapshot(dirty_users=[0]) == _reference_dataset(
                builder
            )


class TestChainedIndexUpdates:
    @given(chunks=st.lists(streaming_events(max_events=8), min_size=1, max_size=4))
    @settings(max_examples=40)
    def test_chained_updates_equal_cold_build(self, chunks):
        seed_dataset = random_dataset(
            n_users=6, n_items=10, density=0.25, seed=17, ratings=True
        )
        builder = MutableBipartiteBuilder.from_dataset(seed_dataset)
        index = ProfileIndex(seed_dataset)
        index.adamic_adar_matrix  # exercise the lazy-cache patches too
        index.centered
        for chunk in chunks:
            _apply_builder_events(builder, chunk)
            dirty = set(builder.dirty_rows)
            snapshot = builder.snapshot()
            index.update(snapshot, dirty)
        cold = ProfileIndex(builder.snapshot())
        np.testing.assert_array_equal(index.norms, cold.norms)
        np.testing.assert_array_equal(index.sizes, cold.sizes)
        assert abs(index.matrix - cold.matrix).nnz == 0
        centered_matrix, centered_norms = index.centered
        cold_matrix, cold_norms = cold.centered
        np.testing.assert_array_equal(centered_norms, cold_norms)
        assert abs(centered_matrix - cold_matrix).nnz == 0
        np.testing.assert_array_equal(
            index.adamic_adar_matrix.toarray(),
            cold.adamic_adar_matrix.toarray(),
        )
