"""Property-based tests for KIFF's core guarantees."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import KiffConfig, SimilarityEngine, brute_force_knn, kiff, per_user_recall
from repro.core.rcs import build_rcs
from tests.properties.test_property_rcs import small_datasets


class TestKiffProperties:
    @given(small_datasets(max_users=16, max_items=12), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_gamma_inf_optimality(self, dataset, k):
        """Section III-D: exhausting RCSs yields an exact graph on every
        user whose k-th exact similarity is positive."""
        if k >= dataset.n_users:
            k = dataset.n_users - 1
        engine = SimilarityEngine(dataset)
        result = kiff(engine, KiffConfig(k=k, gamma=math.inf, beta=0.0))
        exact = brute_force_knn(SimilarityEngine(dataset), k)
        recalls = per_user_recall(result.graph, exact.graph)
        positive = exact.graph.kth_sims() > 1e-12
        assert np.all(recalls[positive] == 1.0)

    @given(small_datasets(max_users=16, max_items=12), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_fast_reference_equivalence(self, dataset, k):
        if k >= dataset.n_users:
            k = dataset.n_users - 1
        fast = kiff(SimilarityEngine(dataset), KiffConfig(k=k, mode="fast"))
        reference = kiff(
            SimilarityEngine(dataset), KiffConfig(k=k, mode="reference")
        )
        assert fast.graph == reference.graph

    @given(small_datasets(max_users=16, max_items=12))
    @settings(max_examples=30, deadline=None)
    def test_evaluations_bounded_by_rcs_total(self, dataset):
        engine = SimilarityEngine(dataset)
        result = kiff(engine, KiffConfig(k=3, beta=0.0, gamma=7))
        assert result.evaluations <= build_rcs(dataset).total_candidates

    @given(small_datasets(max_users=16, max_items=12))
    @settings(max_examples=30, deadline=None)
    def test_neighbors_always_share_items(self, dataset):
        """KIFF can only connect users with >= 1 common item."""
        result = kiff(SimilarityEngine(dataset), KiffConfig(k=3))
        for user in range(dataset.n_users):
            items_u = set(dataset.user_items(user).tolist())
            for v in result.graph.neighbors_of(user):
                items_v = set(dataset.user_items(int(v)).tolist())
                assert items_u & items_v

    @given(small_datasets(max_users=14, max_items=10))
    @settings(max_examples=30, deadline=None)
    def test_sims_are_true_similarities(self, dataset):
        result = kiff(SimilarityEngine(dataset), KiffConfig(k=3))
        check = SimilarityEngine(dataset)
        for user in range(dataset.n_users):
            for v, s in zip(
                result.graph.neighbors_of(user), result.graph.sims_of(user)
            ):
                expected = check.metric.score_pair(check.index, user, int(v))
                assert abs(expected - s) < 1e-9

    @given(small_datasets(max_users=14, max_items=10))
    @settings(max_examples=20, deadline=None)
    def test_deterministic(self, dataset):
        a = kiff(SimilarityEngine(dataset), KiffConfig(k=3))
        b = kiff(SimilarityEngine(dataset), KiffConfig(k=3))
        assert a.graph == b.graph
        assert a.evaluations == b.evaluations
