"""Check relative markdown links (and their anchors) across the docs.

Scans README.md, ROADMAP.md and docs/*.md for ``[text](target)``
links, skips absolute URLs, and verifies that

* every relative target resolves to an existing file or directory
  (relative to the linking file), and
* every ``#fragment`` — on a relative target or bare in-page — matches
  a heading in the target file under GitHub's slugification rules.

Usage::

    python scripts/check_doc_links.py

Exit status: 0 when every link resolves, 1 otherwise.
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Inline links; images share the syntax (the leading ``!`` is ignored
#: by the pattern, so they are checked too).  Reference-style links are
#: not used in this repo.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _slugify(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, strip the rest."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(markdown: str) -> set[str]:
    return {_slugify(match) for match in _HEADING.findall(markdown)}


def check_file(path: Path) -> list[str]:
    """Every broken link in *path*, rendered as error strings."""
    errors = []
    text = path.read_text(encoding="utf-8")
    rel = path.relative_to(REPO_ROOT)
    for target in _LINK.findall(text):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                errors.append(f"{rel}: broken link target {target!r}")
                continue
        else:
            resolved = path
        if fragment:
            if resolved.is_dir() or resolved.suffix not in (".md", ""):
                continue  # anchors into non-markdown are not checkable
            if fragment not in _anchors(resolved.read_text(encoding="utf-8")):
                errors.append(f"{rel}: broken anchor {target!r}")
    return errors


def main() -> int:
    files = [REPO_ROOT / "README.md", REPO_ROOT / "ROADMAP.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    errors = []
    for path in files:
        if path.exists():
            errors.extend(check_file(path))
    for error in errors:
        print(error)
    if errors:
        print(f"{len(errors)} broken link(s)")
        return 1
    print(f"all relative links resolve across {len(files)} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
