"""Mixed-batch smoke client for a running ``repro serve`` instance.

Usage::

    python scripts/serving_smoke_client.py PORT [HOST]

Sends a pipelined batch of ``neighbors``/``recommend``/``stats``
requests (plus one deliberately bad op) over one TCP connection,
asserts every data reply is ok and version-stamped and that the bad op
gets an error envelope, and prints a one-line summary.  Exits non-zero
on any protocol violation — CI's serving smoke job runs this while the
server is mid-ingestion.
"""

import json
import socket
import sys


def main() -> int:
    port = int(sys.argv[1])
    host = sys.argv[2] if len(sys.argv) > 2 else "127.0.0.1"
    requests = (
        [{"op": "neighbors", "user": user} for user in range(8)]
        + [{"op": "recommend", "user": user, "top_n": 5} for user in range(8)]
        + [{"op": "stats"}, {"op": "bogus"}]
    )
    payload = "".join(
        json.dumps(request) + "\n" for request in requests
    ).encode()
    with socket.create_connection((host, port), timeout=10) as conn:
        conn.sendall(payload)
        with conn.makefile("r") as stream:
            replies = [json.loads(stream.readline()) for _ in requests]
    data, bad = replies[:-1], replies[-1]
    assert all(reply["ok"] for reply in data), data
    assert not bad["ok"] and "unknown op" in bad["error"], bad
    versions = sorted({reply["version"] for reply in data[:-1]})
    stats = data[-1]
    print(
        f"answered {len(replies)} requests at version(s) {versions}; "
        f"server totals: {stats['requests']} requests in "
        f"{stats['batches']} batches (max batch {stats['max_batch']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
