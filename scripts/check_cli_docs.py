"""Fail when the CLI and docs/OPERATIONS.md drift apart.

Imports the live argparse parser (``repro.cli.build_parser``) and
asserts that every option string (``--shards``, ``--move``, ...) and
every ``experiment`` positional choice (``table2``, ``rebalance``, ...)
appears verbatim in the operator runbook's flag/subcommand reference.
CI's docs job runs this, so adding a flag without documenting it —
or renaming one and leaving a stale row behind is half-caught too,
since the old spelling stops matching ``--help`` readers — fails the
build.

Usage::

    PYTHONPATH=src python scripts/check_cli_docs.py

Exit status: 0 when every surface is documented, 1 otherwise (each
missing item printed on its own line).
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
OPERATIONS = REPO_ROOT / "docs" / "OPERATIONS.md"


def undocumented(text: str) -> list[str]:
    """Every CLI surface string that *text* fails to mention."""
    from repro.cli import build_parser

    parser = build_parser()
    missing = []
    for action in parser._actions:
        for option in action.option_strings:
            # `-h` is a substring of every other flag; require the
            # canonical long spelling only.
            if option == "-h":
                continue
            if f"`{option}`" not in text and option not in text:
                missing.append(f"flag {option}")
        if action.dest == "experiment":
            for choice in action.choices:
                if f"`{choice}`" not in text:
                    missing.append(f"experiment choice {choice}")
    return missing


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    text = OPERATIONS.read_text(encoding="utf-8")
    missing = undocumented(text)
    for item in missing:
        print(f"docs/OPERATIONS.md: undocumented {item}")
    if missing:
        print(f"{len(missing)} CLI surface(s) missing from the runbook")
        return 1
    print("docs/OPERATIONS.md covers every CLI flag and subcommand")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
